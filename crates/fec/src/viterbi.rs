//! Viterbi decoding for the K=7 (133, 171) convolutional code.
//!
//! Two front ends share one trellis search:
//!
//! * [`decode_hard`] takes hard bits (0/1) and uses Hamming branch metrics;
//! * [`decode_soft`] takes log-likelihood ratios (LLRs, positive ⇒ bit 0
//!   more likely, the convention produced by `mimonet-detect`'s demappers)
//!   and uses correlation branch metrics, which is the max-likelihood
//!   metric for BPSK-like per-bit channels.
//!
//! Punctured positions are passed as *erasures*: [`Symbol::Erased`] for hard
//! input, LLR 0.0 for soft input — both contribute nothing to any branch
//! metric, which is exactly the ML treatment of depunctured bits.
//!
//! Decoding is block-oriented with a terminated trellis (six zero tail bits,
//! as produced by [`crate::conv::encode_terminated`]); `decode_*` returns the
//! data bits *without* the tail.

// Index-based loops here are the clearer expression of the math
// (matrix/carrier indexing); silence the iterator-style suggestion.
#![allow(clippy::needless_range_loop)]
use crate::conv::{encode_step, NUM_STATES, TAIL_BITS};

/// One received coded bit for hard-decision decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Symbol {
    /// A received hard bit.
    Bit(u8),
    /// A punctured (never transmitted) position.
    Erased,
}

impl Symbol {
    /// Wraps a 0/1 bit.
    pub fn bit(b: u8) -> Self {
        debug_assert!(b <= 1);
        Symbol::Bit(b)
    }
}

/// Errors from the decoder front ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViterbiError {
    /// Input length is odd — the rate-1/2 mother code emits bit pairs.
    OddLength(usize),
    /// Input is shorter than the six tail-bit pairs.
    TooShort(usize),
}

impl std::fmt::Display for ViterbiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViterbiError::OddLength(n) => {
                write!(f, "coded input length {n} is odd; expected (A,B) pairs")
            }
            ViterbiError::TooShort(n) => {
                write!(f, "coded input length {n} too short for a terminated block")
            }
        }
    }
}

impl std::error::Error for ViterbiError {}

/// Precomputed trellis: for each (state, input bit) the next state and the
/// index of the output pair `(a << 1) | b` into a per-step reward table.
/// Built once lazily; 64 states is tiny.
struct Trellis {
    // [state][input] -> index of the output pair (a, b) as (a << 1) | b.
    pair_idx: [[usize; 2]; NUM_STATES],
    // [state][input] -> next state.
    next: [[u8; 2]; NUM_STATES],
}

impl Trellis {
    fn new() -> Self {
        let mut pair_idx = [[0usize; 2]; NUM_STATES];
        let mut next = [[0u8; 2]; NUM_STATES];
        for s in 0..NUM_STATES {
            for bit in 0..2usize {
                let (a, b, ns) = encode_step(s as u8, bit as u8);
                pair_idx[s][bit] = ((a as usize) << 1) | b as usize;
                next[s][bit] = ns;
            }
        }
        Self { pair_idx, next }
    }
}

fn trellis() -> &'static Trellis {
    use std::sync::OnceLock;
    static T: OnceLock<Trellis> = OnceLock::new();
    T.get_or_init(Trellis::new)
}

const NEG: f64 = f64::NEG_INFINITY;

/// A reusable Viterbi decoder holding the metric and survivor buffers.
///
/// The search is *table-driven*: each trellis step first computes the four
/// possible output-pair rewards `r(a) + r(b)` once, then every
/// (state, input) branch is a single table lookup plus add — instead of the
/// 256 reward-closure invocations per step of the naive formulation (the
/// "before" side, kept in [`reference`]). The per-pair sums use the same
/// operands in the same order as the naive code, so decoded outputs are
/// bit-identical.
///
/// Buffers grow to the largest block seen and are then reused; decoding a
/// warmed decoder into a warmed output vector performs no heap allocation.
#[derive(Clone, Debug, Default)]
pub struct ViterbiDecoder {
    metric: Vec<f64>,
    next_metric: Vec<f64>,
    // survivor[t][next_state] = (prev_state, input bit)
    survivor: Vec<[(u8, u8); NUM_STATES]>,
}

impl ViterbiDecoder {
    /// Creates a decoder with empty scratch buffers (they grow on first
    /// use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Core search over `num_steps` trellis steps. `pair_rewards(t)` returns
    /// the four branch rewards for hypothesized output pairs, indexed by
    /// `(a << 1) | b`. Decoded input bits are appended to `out`.
    fn search_into(
        &mut self,
        num_steps: usize,
        pair_rewards: impl Fn(usize) -> [f64; 4],
        terminated: bool,
        out: &mut Vec<u8>,
    ) {
        let tr = trellis();
        self.metric.clear();
        self.metric.resize(NUM_STATES, NEG);
        self.metric[0] = 0.0; // encoder starts in the zero state
        self.next_metric.clear();
        self.next_metric.resize(NUM_STATES, NEG);
        self.survivor.clear();
        self.survivor.reserve(num_steps);

        for t in 0..num_steps {
            let pair = pair_rewards(t);
            self.next_metric.fill(NEG);
            let mut surv = [(0u8, 0u8); NUM_STATES];
            for s in 0..NUM_STATES {
                let m = self.metric[s];
                if m == NEG {
                    continue;
                }
                for bit in 0..2usize {
                    let ns = tr.next[s][bit] as usize;
                    let cand = m + pair[tr.pair_idx[s][bit]];
                    if cand > self.next_metric[ns] {
                        self.next_metric[ns] = cand;
                        surv[ns] = (s as u8, bit as u8);
                    }
                }
            }
            self.survivor.push(surv);
            std::mem::swap(&mut self.metric, &mut self.next_metric);
        }

        // Final state: zero for terminated blocks, otherwise best metric.
        let mut state = if terminated {
            0usize
        } else {
            self.metric
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0)
        };

        let base = out.len();
        out.resize(base + num_steps, 0);
        for t in (0..num_steps).rev() {
            let (prev, bit) = self.survivor[t][state];
            out[base + t] = bit;
            state = prev as usize;
        }
    }

    /// Per-step reward table for hard symbols: reward 1 for matching a
    /// received bit, 0 for a mismatch or an erasure — exactly the naive
    /// `bit_reward` summed over the (a, b) pair.
    #[inline]
    fn hard_pair(coded: &[Symbol], t: usize) -> [f64; 4] {
        let bit = |idx: usize, hyp: u8| match coded[idx] {
            Symbol::Erased => 0.0,
            Symbol::Bit(rx) => {
                if rx == hyp {
                    1.0
                } else {
                    0.0
                }
            }
        };
        let (a0, a1) = (bit(2 * t, 0), bit(2 * t, 1));
        let (b0, b1) = (bit(2 * t + 1, 0), bit(2 * t + 1, 1));
        [a0 + b0, a0 + b1, a1 + b0, a1 + b1]
    }

    /// Per-step reward table for soft LLRs: `+llr/2` for hypothesis 0,
    /// `-llr/2` for 1 (erasures carry LLR 0 and contribute nothing).
    #[inline]
    fn soft_pair(llrs: &[f64], t: usize) -> [f64; 4] {
        let a0 = 0.5 * llrs[2 * t];
        let a1 = -0.5 * llrs[2 * t];
        let b0 = 0.5 * llrs[2 * t + 1];
        let b1 = -0.5 * llrs[2 * t + 1];
        [a0 + b0, a0 + b1, a1 + b0, a1 + b1]
    }

    /// [`decode_hard`] into a caller-owned vector (cleared first; capacity
    /// is reused).
    pub fn decode_hard_into(
        &mut self,
        coded: &[Symbol],
        out: &mut Vec<u8>,
    ) -> Result<(), ViterbiError> {
        out.clear();
        if !coded.len().is_multiple_of(2) {
            return Err(ViterbiError::OddLength(coded.len()));
        }
        let steps = coded.len() / 2;
        if steps < TAIL_BITS {
            return Err(ViterbiError::TooShort(coded.len()));
        }
        self.search_into(steps, |t| Self::hard_pair(coded, t), true, out);
        out.truncate(steps - TAIL_BITS);
        Ok(())
    }

    /// [`decode_hard_unterminated`] into a caller-owned vector (cleared
    /// first; capacity is reused).
    pub fn decode_hard_unterminated_into(
        &mut self,
        coded: &[Symbol],
        out: &mut Vec<u8>,
    ) -> Result<(), ViterbiError> {
        out.clear();
        if !coded.len().is_multiple_of(2) {
            return Err(ViterbiError::OddLength(coded.len()));
        }
        let steps = coded.len() / 2;
        if steps == 0 {
            return Ok(());
        }
        self.search_into(steps, |t| Self::hard_pair(coded, t), false, out);
        Ok(())
    }

    /// [`decode_soft`] into a caller-owned vector (cleared first; capacity
    /// is reused).
    pub fn decode_soft_into(
        &mut self,
        llrs: &[f64],
        out: &mut Vec<u8>,
    ) -> Result<(), ViterbiError> {
        out.clear();
        if !llrs.len().is_multiple_of(2) {
            return Err(ViterbiError::OddLength(llrs.len()));
        }
        let steps = llrs.len() / 2;
        if steps < TAIL_BITS {
            return Err(ViterbiError::TooShort(llrs.len()));
        }
        self.search_into(steps, |t| Self::soft_pair(llrs, t), true, out);
        out.truncate(steps - TAIL_BITS);
        Ok(())
    }

    /// [`decode_soft_unterminated`] into a caller-owned vector (cleared
    /// first; capacity is reused).
    pub fn decode_soft_unterminated_into(
        &mut self,
        llrs: &[f64],
        out: &mut Vec<u8>,
    ) -> Result<(), ViterbiError> {
        out.clear();
        if !llrs.len().is_multiple_of(2) {
            return Err(ViterbiError::OddLength(llrs.len()));
        }
        let steps = llrs.len() / 2;
        if steps == 0 {
            return Ok(());
        }
        self.search_into(steps, |t| Self::soft_pair(llrs, t), false, out);
        Ok(())
    }
}

/// Runs `f` with a per-thread shared [`ViterbiDecoder`], so the free
/// `decode_*` functions reuse metric/survivor buffers across calls.
fn with_decoder<R>(f: impl FnOnce(&mut ViterbiDecoder) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static DECODER: RefCell<ViterbiDecoder> = RefCell::new(ViterbiDecoder::new());
    }
    DECODER.with(|d| f(&mut d.borrow_mut()))
}

/// Hard-decision decoding of a terminated block.
///
/// `coded` holds the (possibly depunctured) coded stream as
/// `[a0, b0, a1, b1, ...]` with erasures at punctured positions. Returns the
/// decoded data bits with the six tail bits stripped.
pub fn decode_hard(coded: &[Symbol]) -> Result<Vec<u8>, ViterbiError> {
    let mut out = Vec::new();
    with_decoder(|d| d.decode_hard_into(coded, &mut out))?;
    Ok(out)
}

/// Hard-decision decoding of an *unterminated* stream: the trellis may end
/// in any state (the survivor with the best metric wins) and **all** input
/// positions decode to output bits — nothing is stripped.
///
/// This is the mode for the 802.11 DATA field, whose six tail bits sit
/// between the PSDU and the scrambled pad bits, so the encoder does not
/// finish in the zero state.
pub fn decode_hard_unterminated(coded: &[Symbol]) -> Result<Vec<u8>, ViterbiError> {
    let mut out = Vec::new();
    with_decoder(|d| d.decode_hard_unterminated_into(coded, &mut out))?;
    Ok(out)
}

/// Soft-decision decoding of an unterminated stream; see
/// [`decode_hard_unterminated`].
pub fn decode_soft_unterminated(llrs: &[f64]) -> Result<Vec<u8>, ViterbiError> {
    let mut out = Vec::new();
    with_decoder(|d| d.decode_soft_unterminated_into(llrs, &mut out))?;
    Ok(out)
}

/// Soft-decision decoding of a terminated block.
///
/// `llrs[i]` is the log-likelihood ratio of coded bit `i`:
/// `log P(bit=0) - log P(bit=1)` (positive ⇒ 0 more likely). Punctured
/// positions must carry LLR `0.0`. Returns data bits without the tail.
pub fn decode_soft(llrs: &[f64]) -> Result<Vec<u8>, ViterbiError> {
    let mut out = Vec::new();
    with_decoder(|d| d.decode_soft_into(llrs, &mut out))?;
    Ok(out)
}

/// The pre-optimization closure-driven search, kept as the equivalence
/// oracle for the table-driven decoder (proptests in `tests/`) and as the
/// "before" side of the hot-path benchmark. Allocates fresh metric and
/// survivor buffers and invokes the reward closure twice per branch —
/// 256 calls per trellis step.
pub mod reference {
    use super::*;

    fn search(
        num_steps: usize,
        bit_reward: impl Fn(usize, u8) -> f64,
        terminated: bool,
    ) -> Vec<u8> {
        let tr = trellis();
        let mut metric = vec![NEG; NUM_STATES];
        metric[0] = 0.0;
        let mut survivor: Vec<[(u8, u8); NUM_STATES]> = Vec::with_capacity(num_steps);

        let mut next_metric = vec![NEG; NUM_STATES];
        for t in 0..num_steps {
            next_metric.fill(NEG);
            let mut surv = [(0u8, 0u8); NUM_STATES];
            for s in 0..NUM_STATES {
                let m = metric[s];
                if m == NEG {
                    continue;
                }
                for bit in 0..2usize {
                    let pair = tr.pair_idx[s][bit];
                    let (a, b) = ((pair >> 1) as u8, (pair & 1) as u8);
                    let ns = tr.next[s][bit] as usize;
                    let r = bit_reward(2 * t, a) + bit_reward(2 * t + 1, b);
                    let cand = m + r;
                    if cand > next_metric[ns] {
                        next_metric[ns] = cand;
                        surv[ns] = (s as u8, bit as u8);
                    }
                }
            }
            survivor.push(surv);
            std::mem::swap(&mut metric, &mut next_metric);
        }

        let mut state = if terminated {
            0usize
        } else {
            metric
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0)
        };

        let mut bits = vec![0u8; num_steps];
        for t in (0..num_steps).rev() {
            let (prev, bit) = survivor[t][state];
            bits[t] = bit;
            state = prev as usize;
        }
        bits
    }

    fn hard_reward(coded: &[Symbol]) -> impl Fn(usize, u8) -> f64 + '_ {
        |idx, hyp| match coded[idx] {
            Symbol::Erased => 0.0,
            Symbol::Bit(rx) => {
                if rx == hyp {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn soft_reward(llrs: &[f64]) -> impl Fn(usize, u8) -> f64 + '_ {
        |idx, hyp| {
            let l = llrs[idx];
            if hyp == 0 {
                0.5 * l
            } else {
                -0.5 * l
            }
        }
    }

    /// Reference counterpart of [`super::decode_hard`].
    pub fn decode_hard(coded: &[Symbol]) -> Result<Vec<u8>, ViterbiError> {
        if !coded.len().is_multiple_of(2) {
            return Err(ViterbiError::OddLength(coded.len()));
        }
        let steps = coded.len() / 2;
        if steps < TAIL_BITS {
            return Err(ViterbiError::TooShort(coded.len()));
        }
        let bits = search(steps, hard_reward(coded), true);
        Ok(bits[..steps - TAIL_BITS].to_vec())
    }

    /// Reference counterpart of [`super::decode_hard_unterminated`].
    pub fn decode_hard_unterminated(coded: &[Symbol]) -> Result<Vec<u8>, ViterbiError> {
        if !coded.len().is_multiple_of(2) {
            return Err(ViterbiError::OddLength(coded.len()));
        }
        let steps = coded.len() / 2;
        if steps == 0 {
            return Ok(Vec::new());
        }
        Ok(search(steps, hard_reward(coded), false))
    }

    /// Reference counterpart of [`super::decode_soft_unterminated`].
    pub fn decode_soft_unterminated(llrs: &[f64]) -> Result<Vec<u8>, ViterbiError> {
        if !llrs.len().is_multiple_of(2) {
            return Err(ViterbiError::OddLength(llrs.len()));
        }
        let steps = llrs.len() / 2;
        if steps == 0 {
            return Ok(Vec::new());
        }
        Ok(search(steps, soft_reward(llrs), false))
    }

    /// Reference counterpart of [`super::decode_soft`].
    pub fn decode_soft(llrs: &[f64]) -> Result<Vec<u8>, ViterbiError> {
        if !llrs.len().is_multiple_of(2) {
            return Err(ViterbiError::OddLength(llrs.len()));
        }
        let steps = llrs.len() / 2;
        if steps < TAIL_BITS {
            return Err(ViterbiError::TooShort(llrs.len()));
        }
        let bits = search(steps, soft_reward(llrs), true);
        Ok(bits[..steps - TAIL_BITS].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::encode_terminated;

    fn to_symbols(bits: &[u8]) -> Vec<Symbol> {
        bits.iter().map(|&b| Symbol::bit(b)).collect()
    }

    fn pattern(len: usize, seed: u64) -> Vec<u8> {
        // Small deterministic PRBS for tests.
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect()
    }

    /// Deterministic f64 in [-4, 4] for LLR fuzzing.
    fn llr_pattern(len: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x & 0xFFFF) as f64 / 65535.0 - 0.5) * 8.0
            })
            .collect()
    }

    #[test]
    fn table_driven_matches_reference_hard_random_with_erasures() {
        for seed in 0..20u64 {
            let len = 2 * (TAIL_BITS + 4 + (seed as usize * 7) % 90);
            let bits = pattern(len, seed.wrapping_mul(0x9E37).wrapping_add(1));
            let mut syms = to_symbols(&bits);
            // Scatter erasures (including adjacent pairs) over the stream.
            for i in (seed as usize % 5..len).step_by(5 + (seed as usize % 3)) {
                syms[i] = Symbol::Erased;
            }
            assert_eq!(
                decode_hard(&syms).unwrap(),
                reference::decode_hard(&syms).unwrap(),
                "terminated hard, seed {seed}"
            );
            assert_eq!(
                decode_hard_unterminated(&syms).unwrap(),
                reference::decode_hard_unterminated(&syms).unwrap(),
                "unterminated hard, seed {seed}"
            );
        }
    }

    #[test]
    fn table_driven_matches_reference_soft_random() {
        for seed in 0..20u64 {
            let len = 2 * (TAIL_BITS + 2 + (seed as usize * 11) % 120);
            let mut llrs = llr_pattern(len, seed.wrapping_mul(0xC2B2).wrapping_add(3));
            // Zero LLRs model depunctured erasures.
            for i in (seed as usize % 4..len).step_by(6) {
                llrs[i] = 0.0;
            }
            assert_eq!(
                decode_soft(&llrs).unwrap(),
                reference::decode_soft(&llrs).unwrap(),
                "terminated soft, seed {seed}"
            );
            assert_eq!(
                decode_soft_unterminated(&llrs).unwrap(),
                reference::decode_soft_unterminated(&llrs).unwrap(),
                "unterminated soft, seed {seed}"
            );
        }
    }

    #[test]
    fn clean_roundtrip_hard() {
        let data = pattern(200, 42);
        let coded = encode_terminated(&data);
        let decoded = decode_hard(&to_symbols(&coded)).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn clean_roundtrip_soft() {
        let data = pattern(177, 7);
        let coded = encode_terminated(&data);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 4.0 } else { -4.0 })
            .collect();
        let decoded = decode_soft(&llrs).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        // Free distance 10 ⇒ any 4 errors sufficiently separated correct.
        let data = pattern(120, 99);
        let mut coded = encode_terminated(&data);
        for &pos in &[5usize, 60, 130, 200] {
            coded[pos] ^= 1;
        }
        let decoded = decode_hard(&to_symbols(&coded)).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn corrects_burst_of_four_within_capability() {
        let data = pattern(100, 3);
        let mut coded = encode_terminated(&data);
        // Four errors in a short span: within d_free/2 for this code only if
        // spread over ≥ the traceback span; use pairs 40,41 and 80,81.
        coded[40] ^= 1;
        coded[41] ^= 1;
        coded[80] ^= 1;
        coded[81] ^= 1;
        assert_eq!(decode_hard(&to_symbols(&coded)).unwrap(), data);
    }

    #[test]
    fn erasures_decode_like_punctured_bits() {
        let data = pattern(90, 17);
        let coded = encode_terminated(&data);
        let mut syms = to_symbols(&coded);
        // Erase every 6th coded bit (a rate-ish 6/5 puncture — well within
        // the code's margin on a clean channel).
        for i in (0..syms.len()).step_by(6) {
            syms[i] = Symbol::Erased;
        }
        assert_eq!(decode_hard(&syms).unwrap(), data);
    }

    #[test]
    fn soft_zero_llrs_at_punctures() {
        let data = pattern(90, 21);
        let coded = encode_terminated(&data);
        let mut llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 2.0 } else { -2.0 })
            .collect();
        for i in (0..llrs.len()).step_by(6) {
            llrs[i] = 0.0;
        }
        assert_eq!(decode_soft(&llrs).unwrap(), data);
    }

    #[test]
    fn soft_outperforms_hard_with_weak_bits() {
        // Flip three bits but mark them as low-confidence in the soft input;
        // soft decoding must recover, as must hard (3 < d_free/2), but a
        // soft decoder with *confidence* on correct bits and doubt on
        // errors converges with far fewer metric ties.
        let data = pattern(60, 5);
        let coded = encode_terminated(&data);
        let mut llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 5.0 } else { -5.0 })
            .collect();
        for &pos in &[10usize, 50, 90] {
            // wrong sign but small magnitude
            llrs[pos] = -llrs[pos].signum() * 0.2;
        }
        assert_eq!(decode_soft(&llrs).unwrap(), data);
    }

    #[test]
    fn empty_data_block() {
        // Only the 6 tail bits.
        let coded = encode_terminated(&[]);
        assert_eq!(coded.len(), 12);
        assert_eq!(decode_hard(&to_symbols(&coded)).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            decode_hard(&[Symbol::bit(0)]),
            Err(ViterbiError::OddLength(1))
        );
        assert_eq!(
            decode_hard(&to_symbols(&[0, 0])),
            Err(ViterbiError::TooShort(2))
        );
        assert_eq!(decode_soft(&[0.0; 3]), Err(ViterbiError::OddLength(3)));
        assert_eq!(decode_soft(&[0.0; 4]), Err(ViterbiError::TooShort(4)));
    }

    #[test]
    fn unterminated_decodes_full_stream() {
        // Encode WITHOUT tail bits: the encoder ends in a data-dependent
        // state; the unterminated decoder must still recover everything.
        let data = pattern(150, 31);
        let coded = crate::conv::ConvEncoder::new().encode(&data);
        let got = decode_hard_unterminated(&to_symbols(&coded)).unwrap();
        assert_eq!(got, data);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 3.0 } else { -3.0 })
            .collect();
        assert_eq!(decode_soft_unterminated(&llrs).unwrap(), data);
    }

    #[test]
    fn unterminated_corrects_errors_midstream() {
        let data = pattern(150, 8);
        let mut coded = crate::conv::ConvEncoder::new().encode(&data);
        for &p in &[40usize, 120, 200] {
            coded[p] ^= 1;
        }
        assert_eq!(decode_hard_unterminated(&to_symbols(&coded)).unwrap(), data);
    }

    #[test]
    fn unterminated_empty_input() {
        assert_eq!(decode_hard_unterminated(&[]).unwrap(), Vec::<u8>::new());
        assert_eq!(decode_soft_unterminated(&[]).unwrap(), Vec::<u8>::new());
        assert_eq!(
            decode_soft_unterminated(&[1.0]),
            Err(ViterbiError::OddLength(1))
        );
    }

    #[test]
    fn all_erased_still_terminates() {
        // With no channel information the decoder must still return *some*
        // path ending in state 0 (all-zero data is such a path).
        let syms = vec![Symbol::Erased; 2 * (20 + TAIL_BITS)];
        let out = decode_hard(&syms).unwrap();
        assert_eq!(out.len(), 20);
    }
}
