//! Property-based tests of the FEC pipeline: every stage must be exactly
//! invertible on a clean channel, for arbitrary data and all code rates.

use mimonet_fec::bits::{bits_to_bytes, bytes_to_bits};
use mimonet_fec::conv::encode_terminated;
use mimonet_fec::crc::{append_fcs, check_fcs};
use mimonet_fec::interleaver::Interleaver;
use mimonet_fec::puncture::{depuncture_hard, depuncture_soft, puncture, CodeRate};
use mimonet_fec::scrambler::Scrambler;
use mimonet_fec::viterbi::{decode_hard, decode_hard_unterminated, decode_soft, Symbol};
use mimonet_fec::ConvEncoder;
use proptest::prelude::*;

fn bits(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..2, len)
}

fn rate() -> impl Strategy<Value = CodeRate> {
    prop_oneof![
        Just(CodeRate::R1_2),
        Just(CodeRate::R2_3),
        Just(CodeRate::R3_4),
        Just(CodeRate::R5_6),
    ]
}

proptest! {
    #[test]
    fn bytes_bits_roundtrip(data in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn scrambler_is_an_involution(data in bits(0..512), seed in 1u8..0x80) {
        let mut s1 = Scrambler::new(seed);
        let scrambled = s1.scramble(&data);
        let mut s2 = Scrambler::new(seed);
        prop_assert_eq!(s2.scramble(&scrambled), data);
    }

    #[test]
    fn scrambler_outputs_stay_binary(data in bits(0..256), seed in 1u8..0x80) {
        let mut s = Scrambler::new(seed);
        for b in s.scramble(&data) {
            prop_assert!(b <= 1);
        }
    }

    #[test]
    fn crc_roundtrip_and_tamper_detection(
        mut data in prop::collection::vec(any::<u8>(), 1..128),
        flip_byte in 0usize..128,
        flip_bit in 0u8..8,
    ) {
        let original = data.clone();
        append_fcs(&mut data);
        prop_assert_eq!(check_fcs(&data), Some(original.as_slice()));
        let idx = flip_byte % data.len();
        data[idx] ^= 1 << flip_bit;
        prop_assert_eq!(check_fcs(&data), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn viterbi_inverts_encoder_terminated(data in bits(0..300)) {
        let coded = encode_terminated(&data);
        let symbols: Vec<Symbol> = coded.iter().map(|&b| Symbol::Bit(b)).collect();
        prop_assert_eq!(decode_hard(&symbols).unwrap(), data);
    }

    #[test]
    fn viterbi_inverts_encoder_unterminated(data in bits(20..300)) {
        let coded = ConvEncoder::new().encode(&data);
        let symbols: Vec<Symbol> = coded.iter().map(|&b| Symbol::Bit(b)).collect();
        prop_assert_eq!(decode_hard_unterminated(&symbols).unwrap(), data);
    }

    #[test]
    fn soft_viterbi_with_any_positive_confidence(data in bits(0..150), conf in 0.1..20.0f64) {
        let coded = encode_terminated(&data);
        let llrs: Vec<f64> = coded.iter().map(|&b| if b == 0 { conf } else { -conf }).collect();
        prop_assert_eq!(decode_soft(&llrs).unwrap(), data);
    }

    #[test]
    fn viterbi_corrects_two_errors_anywhere(
        data in bits(30..120),
        p1 in 0usize..1000,
        p2 in 0usize..1000,
    ) {
        let mut coded = encode_terminated(&data);
        let n = coded.len();
        coded[p1 % n] ^= 1;
        coded[p2 % n] ^= 1;
        let symbols: Vec<Symbol> = coded.iter().map(|&b| Symbol::Bit(b)).collect();
        // d_free = 10 ⇒ any 2 errors always correctable.
        prop_assert_eq!(decode_hard(&symbols).unwrap(), data);
    }

    #[test]
    fn puncture_depuncture_positions_are_consistent(data in bits(1..200), r in rate()) {
        let coded = encode_terminated(&data);
        let tx = puncture(&coded, r);
        prop_assert_eq!(tx.len(), r.coded_len(coded.len()));
        let rx = depuncture_hard(&tx, r, coded.len());
        prop_assert_eq!(rx.len(), coded.len());
        // Every non-erased symbol matches the original coded bit.
        for (i, s) in rx.iter().enumerate() {
            if let Symbol::Bit(b) = s {
                prop_assert_eq!(*b, coded[i]);
            }
        }
        // Erasure count matches the rate arithmetic.
        let erased = rx.iter().filter(|s| matches!(s, Symbol::Erased)).count();
        prop_assert_eq!(erased, coded.len() - tx.len());
    }

    #[test]
    fn punctured_roundtrip_all_rates(data in bits(1..200), r in rate()) {
        let coded = encode_terminated(&data);
        let tx = puncture(&coded, r);
        let llrs: Vec<f64> = tx.iter().map(|&b| if b == 0 { 2.0 } else { -2.0 }).collect();
        let rx = depuncture_soft(&llrs, r, coded.len());
        let decoded = mimonet_fec::viterbi::decode_soft(&rx).unwrap();
        prop_assert_eq!(decoded, data);
    }
}

fn interleaver_geometry() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    // (n_bpsc, n_col = 13 HT, stream, n_streams)
    (
        prop_oneof![Just(1usize), Just(2), Just(4), Just(6)],
        Just(13usize),
        0usize..2,
        1usize..3,
    )
        .prop_filter("stream < n_streams", |(_, _, s, n)| s < n)
}

proptest! {
    #[test]
    fn interleaver_roundtrip((n_bpsc, n_col, stream, n_streams) in interleaver_geometry(),
                             seed in any::<u64>()) {
        let n_cbpss = 52 * n_bpsc;
        let il = Interleaver::new(n_cbpss, n_bpsc, n_col, stream, n_streams);
        let mut x = seed | 1;
        let data: Vec<u8> = (0..n_cbpss).map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 1) as u8
        }).collect();
        prop_assert_eq!(il.deinterleave(&il.interleave(&data)), data);
    }

    #[test]
    fn interleaving_preserves_bit_population((n_bpsc, n_col, stream, n_streams) in interleaver_geometry()) {
        let n_cbpss = 52 * n_bpsc;
        let il = Interleaver::new(n_cbpss, n_bpsc, n_col, stream, n_streams);
        let data: Vec<u8> = (0..n_cbpss).map(|i| (i % 2) as u8).collect();
        let out = il.interleave(&data);
        let ones_in: usize = data.iter().map(|&b| b as usize).sum();
        let ones_out: usize = out.iter().map(|&b| b as usize).sum();
        prop_assert_eq!(ones_in, ones_out);
    }
}
