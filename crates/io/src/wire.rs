//! The MIMONet wire format: versioned, length-prefixed, CRC-checked
//! message frames carrying IQ chunks, decoded frames, and link-service
//! control traffic.
//!
//! Every message is one frame on the wire:
//!
//! ```text
//! [magic "MIOW" 4B][version u16][type u16][payload_len u32][payload][crc32 u32]
//! ```
//!
//! All integers are little-endian; complex samples travel as IEEE-754
//! bit patterns (`f64::to_bits`), so a capture round-trips **bit-exactly**
//! — the foundation of the replay-determinism guarantee. The CRC-32 (same
//! polynomial as the frame FCS, reused from `mimonet-fec`) covers
//! version, type, length, and payload, so a flipped header bit is as
//! detectable as a flipped sample.
//!
//! Decoding failures are typed [`WireError`]s, never panics: a truncated
//! stream, a bad magic, an unknown type, or a CRC mismatch each get their
//! own variant, which the transport blocks map onto the fault taxonomy
//! (`transport-truncation`, `transport-desync`, `transport-crc`, ...).

use mimonet_dsp::complex::Complex64;
use mimonet_fec::crc::crc32;
use std::io::{ErrorKind, Read, Write};

/// Frame magic: "MIOW" (MImonet On Wire).
pub const MAGIC: [u8; 4] = *b"MIOW";
/// Current wire protocol version.
pub const WIRE_VERSION: u16 = 1;
/// Fixed header length: magic + version + type + payload length.
pub const HEADER_LEN: usize = 12;
/// Trailing CRC-32 length.
pub const TRAILER_LEN: usize = 4;
/// Upper bound on a single payload (64 MiB) — a length field beyond this
/// is treated as stream desynchronisation, not an allocation request.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// Typed wire-level failure. Everything a hostile or truncated byte
/// stream can do surfaces as one of these.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The stream ended inside a frame.
    Truncated {
        /// Which part of the frame was cut short.
        context: &'static str,
    },
    /// The frame did not start with [`MAGIC`] — stream desync.
    BadMagic([u8; 4]),
    /// Protocol version this implementation does not speak.
    UnsupportedVersion(u16),
    /// Unknown message type code.
    UnknownType(u16),
    /// `payload_len` exceeded [`MAX_PAYLOAD`].
    TooLarge(usize),
    /// CRC-32 mismatch: corruption in flight.
    BadCrc {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC carried by the frame.
        got: u32,
    },
    /// The payload did not parse as its declared type.
    BadPayload(&'static str),
    /// Underlying I/O failure (connection reset, ...).
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { context } => write!(f, "stream truncated inside {context}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::TooLarge(n) => write!(f, "payload length {n} exceeds limit"),
            WireError::BadCrc { expected, got } => {
                write!(
                    f,
                    "crc mismatch: computed {expected:#010x}, frame carried {got:#010x}"
                )
            }
            WireError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            WireError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Truncated { context: "frame" }
        } else {
            WireError::Io(e.to_string())
        }
    }
}

/// Parameters of one link-service session (what a client asks
/// `mimonet-linkd` to run).
#[derive(Clone, Debug, PartialEq)]
pub struct SessionConfig {
    /// MCS index for every frame (stream count follows from it).
    pub mcs: u8,
    /// PSDU length per frame, octets.
    pub payload_len: u32,
    /// Number of frames in the session.
    pub n_frames: u32,
    /// AWGN channel SNR, dB.
    pub snr_db: f64,
    /// Master seed: payloads and channel realizations derive from it.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            mcs: 8,
            payload_len: 80,
            n_frames: 8,
            snr_db: 30.0,
            seed: 1,
        }
    }
}

/// Metadata at the head of a capture (`.iqcap`) — the SigMF-style
/// global segment, binary rather than JSON so captures stay
/// self-contained on one stream.
#[derive(Clone, Debug, PartialEq)]
pub struct CaptureMeta {
    /// Antenna (stream) count; every chunk must carry this many.
    pub n_ant: u16,
    /// Nominal sample rate, Hz (20 MHz for the 802.11n chains).
    pub sample_rate_hz: f64,
    /// Seed that generated the capture (0 when unknown/live).
    pub seed: u64,
    /// Free-form description.
    pub description: String,
}

/// One multi-antenna slab of IQ samples. All antennas carry the same
/// number of samples; `seq` increments per chunk so a receiver can
/// detect datagram loss or stream desync.
#[derive(Clone, Debug, PartialEq)]
pub struct IqChunk {
    /// Chunk sequence number, from 0.
    pub seq: u64,
    /// Per-antenna samples, outer index = antenna.
    pub samples: Vec<Vec<Complex64>>,
}

impl IqChunk {
    /// Samples per antenna.
    pub fn len(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }

    /// `true` when the chunk carries no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One decoded frame streamed back from a session.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedFrame {
    /// Frame index within the session, from 0.
    pub index: u32,
    /// Preamble SNR estimate, dB.
    pub snr_db: f64,
    /// Decoded PSDU bytes.
    pub psdu: Vec<u8>,
}

/// Every message the protocol speaks.
#[derive(Clone, Debug, PartialEq)]
pub enum WireMsg {
    /// Handshake, both directions; carries the speaker's version.
    Hello {
        /// Speaker's wire version.
        version: u16,
    },
    /// Client → server: run one link session.
    SessionRequest(SessionConfig),
    /// Head of a capture stream.
    CaptureHeader(CaptureMeta),
    /// IQ sample slab.
    IqChunk(IqChunk),
    /// Server → client: one decoded frame.
    FrameDecoded(DecodedFrame),
    /// Server → client: the session's `LinkStats`, JSON-rendered.
    SessionStats {
        /// `LinkStats` as a JSON string.
        stats_json: String,
    },
    /// Server → client: the session flowgraph's per-block telemetry,
    /// JSON-rendered `GraphSnapshot`.
    Telemetry {
        /// `GraphSnapshot::to_value` as a JSON string.
        telemetry_json: String,
    },
    /// Typed error report (either direction); mirrors `BlockError`.
    ErrorReport {
        /// Machine-matchable failure class, e.g. `"transport-crc"`.
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Orderly end of stream.
    Bye,
}

impl WireMsg {
    fn type_code(&self) -> u16 {
        match self {
            WireMsg::Hello { .. } => 1,
            WireMsg::SessionRequest(_) => 2,
            WireMsg::CaptureHeader(_) => 3,
            WireMsg::IqChunk(_) => 4,
            WireMsg::FrameDecoded(_) => 5,
            WireMsg::SessionStats { .. } => 6,
            WireMsg::Telemetry { .. } => 7,
            WireMsg::ErrorReport { .. } => 8,
            WireMsg::Bye => 9,
        }
    }
}

// --- little-endian payload scribes ---

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Bounds-checked little-endian reader over a payload slice.
struct Scanner<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::BadPayload(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let n = self.u32(what)? as usize;
        Ok(self.take(n, what)?.to_vec())
    }
    fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        String::from_utf8(self.bytes(what)?).map_err(|_| WireError::BadPayload(what))
    }
    fn finish(&self, what: &'static str) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadPayload(what))
        }
    }
}

fn encode_payload(msg: &WireMsg) -> Vec<u8> {
    let mut p = Vec::new();
    match msg {
        WireMsg::Hello { version } => put_u16(&mut p, *version),
        WireMsg::SessionRequest(c) => {
            p.push(c.mcs);
            put_u32(&mut p, c.payload_len);
            put_u32(&mut p, c.n_frames);
            put_f64(&mut p, c.snr_db);
            put_u64(&mut p, c.seed);
        }
        WireMsg::CaptureHeader(m) => {
            put_u16(&mut p, m.n_ant);
            put_f64(&mut p, m.sample_rate_hz);
            put_u64(&mut p, m.seed);
            put_bytes(&mut p, m.description.as_bytes());
        }
        WireMsg::IqChunk(c) => {
            put_u64(&mut p, c.seq);
            put_u16(&mut p, c.samples.len() as u16);
            put_u32(&mut p, c.len() as u32);
            for ant in &c.samples {
                debug_assert_eq!(ant.len(), c.len(), "ragged IQ chunk");
                for s in ant {
                    put_f64(&mut p, s.re);
                    put_f64(&mut p, s.im);
                }
            }
        }
        WireMsg::FrameDecoded(d) => {
            put_u32(&mut p, d.index);
            put_f64(&mut p, d.snr_db);
            put_bytes(&mut p, &d.psdu);
        }
        WireMsg::SessionStats { stats_json } => put_bytes(&mut p, stats_json.as_bytes()),
        WireMsg::Telemetry { telemetry_json } => put_bytes(&mut p, telemetry_json.as_bytes()),
        WireMsg::ErrorReport { kind, detail } => {
            put_bytes(&mut p, kind.as_bytes());
            put_bytes(&mut p, detail.as_bytes());
        }
        WireMsg::Bye => {}
    }
    p
}

fn decode_payload(type_code: u16, payload: &[u8]) -> Result<WireMsg, WireError> {
    let mut s = Scanner::new(payload);
    let msg = match type_code {
        1 => WireMsg::Hello {
            version: s.u16("hello")?,
        },
        2 => WireMsg::SessionRequest(SessionConfig {
            mcs: s.u8("session mcs")?,
            payload_len: s.u32("session payload_len")?,
            n_frames: s.u32("session n_frames")?,
            snr_db: s.f64("session snr")?,
            seed: s.u64("session seed")?,
        }),
        3 => WireMsg::CaptureHeader(CaptureMeta {
            n_ant: s.u16("capture n_ant")?,
            sample_rate_hz: s.f64("capture rate")?,
            seed: s.u64("capture seed")?,
            description: s.string("capture description")?,
        }),
        4 => {
            let seq = s.u64("chunk seq")?;
            let n_ant = s.u16("chunk n_ant")? as usize;
            let n = s.u32("chunk samples")? as usize;
            // Cheap overflow guard before allocating: the samples must
            // actually fit in the remaining payload.
            let declared = n_ant.checked_mul(n).and_then(|t| t.checked_mul(16));
            if declared != Some(payload.len() - s.pos) {
                return Err(WireError::BadPayload("chunk sample count"));
            }
            let mut samples = Vec::with_capacity(n_ant);
            for _ in 0..n_ant {
                let mut ant = Vec::with_capacity(n);
                for _ in 0..n {
                    let re = s.f64("chunk sample")?;
                    let im = s.f64("chunk sample")?;
                    ant.push(Complex64::new(re, im));
                }
                samples.push(ant);
            }
            WireMsg::IqChunk(IqChunk { seq, samples })
        }
        5 => WireMsg::FrameDecoded(DecodedFrame {
            index: s.u32("frame index")?,
            snr_db: s.f64("frame snr")?,
            psdu: s.bytes("frame psdu")?,
        }),
        6 => WireMsg::SessionStats {
            stats_json: s.string("session stats")?,
        },
        7 => WireMsg::Telemetry {
            telemetry_json: s.string("telemetry")?,
        },
        8 => WireMsg::ErrorReport {
            kind: s.string("error kind")?,
            detail: s.string("error detail")?,
        },
        9 => WireMsg::Bye,
        other => return Err(WireError::UnknownType(other)),
    };
    s.finish("trailing bytes")?;
    Ok(msg)
}

/// Encodes a message into one complete wire frame.
pub fn encode(msg: &WireMsg) -> Vec<u8> {
    let payload = encode_payload(msg);
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds wire limit");
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    frame.extend_from_slice(&MAGIC);
    put_u16(&mut frame, WIRE_VERSION);
    put_u16(&mut frame, msg.type_code());
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    let crc = crc32(&frame[4..]);
    put_u32(&mut frame, crc);
    frame
}

/// Decodes one frame from the front of `buf`, returning the message and
/// the number of bytes consumed. `buf` must hold the complete frame.
pub fn decode(buf: &[u8]) -> Result<(WireMsg, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated { context: "header" });
    }
    if buf[..4] != MAGIC {
        return Err(WireError::BadMagic(buf[..4].try_into().unwrap()));
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let type_code = u16::from_le_bytes(buf[6..8].try_into().unwrap());
    let len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let total = HEADER_LEN + len + TRAILER_LEN;
    if buf.len() < total {
        return Err(WireError::Truncated { context: "payload" });
    }
    let expected = crc32(&buf[4..HEADER_LEN + len]);
    let got = u32::from_le_bytes(buf[HEADER_LEN + len..total].try_into().unwrap());
    if expected != got {
        return Err(WireError::BadCrc { expected, got });
    }
    let msg = decode_payload(type_code, &buf[HEADER_LEN..HEADER_LEN + len])?;
    Ok((msg, total))
}

/// Writes one framed message to a byte sink.
pub fn write_msg<W: Write>(w: &mut W, msg: &WireMsg) -> Result<(), WireError> {
    w.write_all(&encode(msg))?;
    Ok(())
}

/// Reads one framed message; `Ok(None)` on a clean end-of-stream *at a
/// frame boundary* (EOF mid-frame is `WireError::Truncated`).
pub fn read_msg_opt<R: Read>(r: &mut R) -> Result<Option<WireMsg>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated { context: "header" }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic(header[..4].try_into().unwrap()));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let type_code = u16::from_le_bytes(header[6..8].try_into().unwrap());
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let mut rest = vec![0u8; len + TRAILER_LEN];
    r.read_exact(&mut rest).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Truncated { context: "payload" }
        } else {
            WireError::from(e)
        }
    })?;
    let mut crc_input = Vec::with_capacity(8 + len);
    crc_input.extend_from_slice(&header[4..]);
    crc_input.extend_from_slice(&rest[..len]);
    let expected = crc32(&crc_input);
    let got = u32::from_le_bytes(rest[len..].try_into().unwrap());
    if expected != got {
        return Err(WireError::BadCrc { expected, got });
    }
    decode_payload(type_code, &rest[..len]).map(Some)
}

/// Reads one framed message; end-of-stream is an error (use
/// [`read_msg_opt`] where EOF is an expected terminator).
pub fn read_msg<R: Read>(r: &mut R) -> Result<WireMsg, WireError> {
    read_msg_opt(r)?.ok_or(WireError::Truncated { context: "stream" })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk() -> IqChunk {
        IqChunk {
            seq: 7,
            samples: vec![
                vec![
                    Complex64::new(1.25, -0.5),
                    Complex64::new(f64::MIN_POSITIVE, -0.0),
                ],
                vec![Complex64::new(0.0, 3.5e-300), Complex64::new(-1.0, 2.0)],
            ],
        }
    }

    fn all_messages() -> Vec<WireMsg> {
        vec![
            WireMsg::Hello {
                version: WIRE_VERSION,
            },
            WireMsg::SessionRequest(SessionConfig::default()),
            WireMsg::CaptureHeader(CaptureMeta {
                n_ant: 2,
                sample_rate_hz: 20e6,
                seed: 42,
                description: "unit test".into(),
            }),
            WireMsg::IqChunk(sample_chunk()),
            WireMsg::FrameDecoded(DecodedFrame {
                index: 3,
                snr_db: 27.5,
                psdu: vec![1, 2, 3, 255],
            }),
            WireMsg::SessionStats {
                stats_json: "{\"per\":{}}".into(),
            },
            WireMsg::Telemetry {
                telemetry_json: "[]".into(),
            },
            WireMsg::ErrorReport {
                kind: "transport-crc".into(),
                detail: "boom".into(),
            },
            WireMsg::Bye,
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in all_messages() {
            let frame = encode(&msg);
            let (back, used) = decode(&frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn stream_io_round_trips_in_order() {
        let msgs = all_messages();
        let mut buf = Vec::new();
        for m in &msgs {
            write_msg(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            assert_eq!(&read_msg(&mut r).unwrap(), m);
        }
        assert_eq!(read_msg_opt(&mut r).unwrap(), None);
    }

    #[test]
    fn samples_survive_bit_exactly() {
        let chunk = sample_chunk();
        let frame = encode(&WireMsg::IqChunk(chunk.clone()));
        let (back, _) = decode(&frame).unwrap();
        let WireMsg::IqChunk(back) = back else {
            panic!("wrong type");
        };
        for (a, b) in chunk.samples.iter().zip(&back.samples) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn corruption_is_detected_not_trusted() {
        let mut frame = encode(&WireMsg::FrameDecoded(DecodedFrame {
            index: 0,
            snr_db: 1.0,
            psdu: vec![0xAA; 64],
        }));
        let mid = frame.len() / 2;
        frame[mid] ^= 0x04;
        assert!(matches!(decode(&frame), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn truncation_is_typed() {
        let frame = encode(&WireMsg::Bye);
        for cut in [0, 3, HEADER_LEN - 1, frame.len() - 1] {
            let err = decode(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut={cut}: {err}"
            );
        }
        // Stream form: EOF at a boundary is None, mid-frame is Truncated.
        let mut r = &frame[..frame.len() - 2];
        assert!(matches!(
            read_msg_opt(&mut r),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_magic_and_unknown_type_are_typed() {
        let mut frame = encode(&WireMsg::Bye);
        frame[0] = b'X';
        assert!(matches!(decode(&frame), Err(WireError::BadMagic(_))));

        // Patch the type code to an unknown value and re-seal the CRC.
        let mut frame = encode(&WireMsg::Bye);
        frame[6] = 0xEE;
        frame[7] = 0xEE;
        let len = frame.len();
        let crc = crc32(&frame[4..len - TRAILER_LEN]);
        frame[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode(&frame),
            Err(WireError::UnknownType(0xEEEE))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = encode(&WireMsg::Bye);
        frame[8..12].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode(&frame), Err(WireError::TooLarge(_))));
    }
}
