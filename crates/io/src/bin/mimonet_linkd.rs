//! `mimonet-linkd` — MIMO-OFDM link service daemon and test client.
//!
//! ```text
//! mimonet-linkd serve  [--addr HOST:PORT]        run the daemon (Ctrl-C to stop)
//! mimonet-linkd client [--addr HOST:PORT] [session knobs] [--assert-local]
//! mimonet-linkd selftest                          loopback smoke: serve + 4 clients
//! ```
//!
//! Session knobs: `--mcs N --frames N --payload BYTES --snr DB --seed N`,
//! or `--scenario FILE --link NAME` to load one link of a scenario file
//! as the session preset (explicit knobs given after it still override).
//! `--assert-local` reruns the same session in-process and exits nonzero
//! unless the served PSDUs and `LinkStats` JSON match byte-for-byte —
//! the CI smoke test's check.

use mimonet_io::client::LinkClient;
use mimonet_io::linkd::LinkServer;
use mimonet_io::session::{run_session, session_from_scenario, Scheduler};
use mimonet_io::wire::SessionConfig;
use serde::Serialize;

fn usage() -> ! {
    eprintln!(
        "usage: mimonet-linkd serve [--addr HOST:PORT]\n\
         \x20      mimonet-linkd client [--addr HOST:PORT] [--mcs N] [--frames N]\n\
         \x20                           [--payload BYTES] [--snr DB] [--seed N]\n\
         \x20                           [--scenario FILE --link NAME] [--assert-local]\n\
         \x20      mimonet-linkd selftest"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    let v = args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage()
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {v}");
        usage()
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mode = argv.first().map(String::as_str).unwrap_or("");
    let mut addr = "127.0.0.1:7700".to_string();
    let mut cfg = SessionConfig::default();
    let mut assert_local = false;

    let rest: Vec<String> = argv.iter().skip(1).cloned().collect();

    // Scenario preset first, so explicit knobs can override its fields.
    let mut scenario: Option<String> = None;
    let mut link: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => scenario = Some(parse(&mut it, "--scenario")),
            "--link" => link = Some(parse(&mut it, "--link")),
            _ => {}
        }
    }
    match (&scenario, &link) {
        (Some(path), Some(name)) => {
            cfg = session_from_scenario(std::path::Path::new(path), name).unwrap_or_else(|e| {
                eprintln!("mimonet-linkd: {e}");
                std::process::exit(1);
            });
            println!("scenario preset {path} link {name}: {cfg:?}");
        }
        (None, None) => {}
        _ => {
            eprintln!("--scenario and --link must be given together");
            usage();
        }
    }

    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" | "--link" => {
                it.next();
            }
            "--addr" => addr = parse(&mut it, "--addr"),
            "--mcs" => cfg.mcs = parse(&mut it, "--mcs"),
            "--frames" => cfg.n_frames = parse(&mut it, "--frames"),
            "--payload" => cfg.payload_len = parse(&mut it, "--payload"),
            "--snr" => cfg.snr_db = parse(&mut it, "--snr"),
            "--seed" => cfg.seed = parse(&mut it, "--seed"),
            "--assert-local" => assert_local = true,
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    match mode {
        "serve" => serve(&addr),
        "client" => client(&addr, &cfg, assert_local),
        "selftest" => selftest(&cfg),
        _ => usage(),
    }
}

fn serve(addr: &str) {
    let server = match LinkServer::bind(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mimonet-linkd: bind {addr} failed: {e}");
            std::process::exit(1);
        }
    };
    println!("mimonet-linkd: serving on {}", server.local_addr());
    // No signal handling by design: the daemon parks here and dies with
    // the process (CI backgrounds it and kills it).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn client(addr: &str, cfg: &SessionConfig, assert_local: bool) {
    let mut c = LinkClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("mimonet-linkd: connect {addr} failed: {e}");
        std::process::exit(1);
    });
    let served = c.run_session(cfg).unwrap_or_else(|e| {
        eprintln!("mimonet-linkd: session failed: {e}");
        std::process::exit(1);
    });
    c.close().ok();
    println!(
        "served session: {} frames decoded, stats {}",
        served.frames.len(),
        served.stats_json
    );
    if assert_local {
        let local = run_session(cfg, Scheduler::Threaded).unwrap_or_else(|e| {
            eprintln!("mimonet-linkd: local reference run failed: {e}");
            std::process::exit(1);
        });
        let local_stats = serde::json::to_string(&local.stats.serialize());
        if served.frames != local.decoded || served.stats_json != local_stats {
            eprintln!("mimonet-linkd: served session DIVERGES from local run");
            eprintln!("  served frames: {}", served.frames.len());
            eprintln!("  local  frames: {}", local.decoded.len());
            eprintln!("  served stats: {}", served.stats_json);
            eprintln!("  local  stats: {local_stats}");
            std::process::exit(1);
        }
        println!("assert-local: served == local (frames + LinkStats byte-identical)");
    }
}

fn selftest(cfg: &SessionConfig) {
    let server = LinkServer::bind("127.0.0.1:0").unwrap_or_else(|e| {
        eprintln!("mimonet-linkd: selftest bind failed: {e}");
        std::process::exit(1);
    });
    let addr = server.local_addr();
    let reference = run_session(cfg, Scheduler::Threaded).unwrap_or_else(|e| {
        eprintln!("mimonet-linkd: selftest local run failed: {e}");
        std::process::exit(1);
    });
    let ref_stats = serde::json::to_string(&reference.stats.serialize());

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let cfg = cfg.clone();
            std::thread::spawn(move || -> Result<_, String> {
                let mut c = LinkClient::connect(addr).map_err(|e| format!("client {i}: {e}"))?;
                let r = c
                    .run_session(&cfg)
                    .map_err(|e| format!("client {i}: {e}"))?;
                c.close().ok();
                Ok(r)
            })
        })
        .collect();
    let mut failures = 0;
    for h in handles {
        match h.join().expect("client thread") {
            Ok(r) => {
                if r.frames != reference.decoded || r.stats_json != ref_stats {
                    eprintln!("selftest: concurrent session diverged from reference");
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("selftest: {e}");
                failures += 1;
            }
        }
    }
    let stats = server.shutdown();
    println!(
        "selftest: 4 concurrent sessions, {} ok / {} failed on the daemon, {failures} divergent",
        stats.sessions_ok(),
        stats.sessions_failed()
    );
    if failures > 0 || stats.sessions_ok() != 4 {
        std::process::exit(1);
    }
}
