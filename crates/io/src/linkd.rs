//! `mimonet-linkd` — the concurrent link-service daemon.
//!
//! One TCP connection is one client; each [`WireMsg::SessionRequest`] on
//! a connection runs one supervised TX→channel→RX flowgraph session on
//! the threaded scheduler ([`run_session`] with [`Scheduler::Threaded`])
//! and streams back every decoded frame, the scored `LinkStats`, and the
//! session flowgraph's per-block telemetry. Sessions are fully isolated:
//! each gets its own flowgraph, message hub, and telemetry, so
//! concurrent clients cannot corrupt each other (the loopback test
//! checks byte-for-byte agreement with local runs under ≥4 concurrent
//! sessions).
//!
//! Per-session reply sequence:
//! `FrameDecoded`* → `SessionStats` → `Telemetry` (the session
//! terminator). Invalid requests or graph failures answer with a single
//! [`WireMsg::ErrorReport`] instead; wire-level faults (truncation, bad
//! CRC, disconnect) end the connection with a typed report where the
//! socket still allows one — the daemon itself never panics and keeps
//! serving other clients.

use crate::session::{run_session, Scheduler, SessionError};
use crate::wire::{read_msg_opt, write_msg, WireMsg, WIRE_VERSION};
use serde::Serialize;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Daemon-wide counters, shared with monitors via `Arc`.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    sessions_started: AtomicU64,
    sessions_ok: AtomicU64,
    sessions_failed: AtomicU64,
    protocol_errors: AtomicU64,
}

impl ServerStats {
    /// Connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
    /// Session requests received.
    pub fn sessions_started(&self) -> u64 {
        self.sessions_started.load(Ordering::Relaxed)
    }
    /// Sessions that ran and streamed results.
    pub fn sessions_ok(&self) -> u64 {
        self.sessions_ok.load(Ordering::Relaxed)
    }
    /// Sessions refused (bad config) or failed (graph error).
    pub fn sessions_failed(&self) -> u64 {
        self.sessions_failed.load(Ordering::Relaxed)
    }
    /// Connections that died on a wire fault or protocol violation.
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }
}

/// A running daemon: accept loop plus one thread per connection. Bind
/// with port 0 for tests; [`LinkServer::shutdown`] (or drop) stops the
/// accept loop and joins every session thread.
pub struct LinkServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl LinkServer {
    /// Binds `addr` and starts serving in background threads.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let accept = {
            let stop = stop.clone();
            let stats = stats.clone();
            std::thread::spawn(move || accept_loop(listener, &stop, &stats))
        };
        Ok(Self {
            local,
            stop,
            stats,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Daemon-wide counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        self.stats.clone()
    }

    /// Stops accepting, waits for in-flight sessions, and returns the
    /// final counters.
    pub fn shutdown(mut self) -> Arc<ServerStats> {
        self.stop_now();
        self.stats.clone()
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for LinkServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

fn accept_loop(listener: TcpListener, stop: &Arc<AtomicBool>, stats: &Arc<ServerStats>) {
    let workers: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let stats = stats.clone();
                let stop = stop.clone();
                let h = std::thread::spawn(move || {
                    // A panicking session must never take the daemon
                    // down; the supervisor already converts block panics
                    // to typed errors, this is the last-resort fence.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        serve_connection(stream, &stats, &stop)
                    }));
                    if r.is_err() {
                        stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    }
                });
                workers.lock().unwrap().push(h);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    for h in workers.into_inner().unwrap() {
        let _ = h.join();
    }
}

/// `Read` adapter over a timeout-equipped socket: retries timeouts until
/// the daemon stops, then reports EOF so the connection winds down.
struct ServerRead<'a> {
    inner: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl Read for ServerRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return Ok(0);
            }
            match (&mut self.inner).read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                r => return r,
            }
        }
    }
}

fn serve_connection(stream: TcpStream, stats: &ServerStats, stop: &AtomicBool) {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = ServerRead {
        inner: &stream,
        stop,
    };

    // Handshake: client speaks first; versions must match.
    match read_msg_opt(&mut reader) {
        Ok(Some(WireMsg::Hello { version })) if version == WIRE_VERSION => {}
        Ok(Some(WireMsg::Hello { version })) => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_msg(
                &mut writer,
                &WireMsg::ErrorReport {
                    kind: "transport-desync".into(),
                    detail: format!("wire version {version}, server speaks {WIRE_VERSION}"),
                },
            );
            return;
        }
        _ => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    if write_msg(
        &mut writer,
        &WireMsg::Hello {
            version: WIRE_VERSION,
        },
    )
    .is_err()
    {
        return;
    }

    loop {
        match read_msg_opt(&mut reader) {
            // Clean goodbye (answered best-effort) or EOF.
            Ok(Some(WireMsg::Bye)) => {
                let _ = write_msg(&mut writer, &WireMsg::Bye);
                return;
            }
            Ok(None) => return,
            Ok(Some(WireMsg::SessionRequest(cfg))) => {
                stats.sessions_started.fetch_add(1, Ordering::Relaxed);
                match run_session(&cfg, Scheduler::Threaded) {
                    Ok(out) => {
                        for frame in &out.decoded {
                            if write_msg(&mut writer, &WireMsg::FrameDecoded(frame.clone()))
                                .is_err()
                            {
                                // Mid-session disconnect: count and stop;
                                // nothing left to report to.
                                stats.sessions_failed.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                        }
                        let stats_json = serde::json::to_string(&out.stats.serialize());
                        let telemetry_json = serde::json::to_string(&out.telemetry.to_value(false));
                        let tail = [
                            WireMsg::SessionStats { stats_json },
                            WireMsg::Telemetry { telemetry_json },
                        ];
                        for msg in &tail {
                            if write_msg(&mut writer, msg).is_err() {
                                stats.sessions_failed.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                        }
                        stats.sessions_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        stats.sessions_failed.fetch_add(1, Ordering::Relaxed);
                        let kind = match &e {
                            SessionError::BadConfig(_) => "bad-config",
                            SessionError::Graph(_) => "session-graph",
                        };
                        if write_msg(
                            &mut writer,
                            &WireMsg::ErrorReport {
                                kind: kind.into(),
                                detail: e.to_string(),
                            },
                        )
                        .is_err()
                        {
                            return;
                        }
                    }
                }
            }
            Ok(Some(other)) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_msg(
                    &mut writer,
                    &WireMsg::ErrorReport {
                        kind: "transport-desync".into(),
                        detail: format!("unexpected message: {other:?}"),
                    },
                );
                return;
            }
            Err(e) => {
                // Truncated request, bad CRC, dead socket: typed close.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let report = crate::net::transport_error(&e);
                let _ = write_msg(
                    &mut writer,
                    &WireMsg::ErrorReport {
                        kind: report.kind,
                        detail: report.detail,
                    },
                );
                return;
            }
        }
    }
}
