//! # mimonet-io
//!
//! Streaming sample transport and link services for MIMONet-rs — the
//! boundary where the in-process flowgraph meets files, sockets, and
//! other processes:
//!
//! * [`wire`] — versioned, length-prefixed, CRC-checked wire codec for
//!   IQ chunks, decoded frames, and link-service control messages; every
//!   malformation decodes to a typed [`wire::WireError`], never a panic.
//! * [`capture`] — SigMF-style `.iqcap` capture files on top of the wire
//!   codec: record a multi-antenna receive once, replay it bit-exactly
//!   through `Receiver::scan` forever.
//! * [`queue`] — bounded MPMC queue with explicit overflow policy and
//!   always-on drop accounting, the backpressure primitive under the
//!   network sources.
//! * [`net`] — TCP/UDP source and sink blocks for `mimonet-runtime`
//!   flowgraphs, with reconnect-with-backoff on the TCP client side and
//!   transport faults mapped onto the PR-2 fault taxonomy
//!   (`transport-truncation` / `transport-crc` / `transport-desync` /
//!   `transport-disconnect`).
//! * [`session`] — seeded, scoreable link sessions: the shared substrate
//!   that makes in-process runs, daemon-served runs, and capture replays
//!   comparable field-for-field.
//! * [`linkd`] / [`client`] — the `mimonet-linkd` multi-client daemon
//!   (one supervised flowgraph session per request, concurrent clients
//!   fully isolated) and its client library.

pub mod capture;
pub mod client;
pub mod linkd;
pub mod net;
pub mod queue;
pub mod session;
pub mod wire;

pub use capture::{
    read_capture, replay_scan, write_capture, CaptureReader, CaptureWriter, ReplayOutcome,
    DEFAULT_CHUNK_LEN,
};
pub use client::{ClientError, LinkClient, SessionResult};
pub use linkd::{LinkServer, ServerStats};
pub use net::{
    transport_error, TcpChunkSink, TcpChunkSource, TransportConfig, TransportStats, UdpChunkSink,
    UdpChunkSource,
};
pub use queue::{BoundedQueue, OverflowPolicy, PushOutcome, QueueStats};
pub use session::{
    build_link_capture, run_session, score_decoded, score_scan, session_psdus, validate_config,
    LinkCapture, Scheduler, SessionError, SessionOutcome,
};
pub use wire::{
    decode, encode, read_msg, read_msg_opt, write_msg, CaptureMeta, DecodedFrame, IqChunk,
    SessionConfig, WireError, WireMsg, WIRE_VERSION,
};
