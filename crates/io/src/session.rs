//! Link-service sessions: seeded PSDU generation, the TX→channel→RX
//! flowgraph run, capture building for record/replay, and the scoring
//! that folds decode results into `LinkStats`.
//!
//! Everything here is a pure function of a [`SessionConfig`], so a
//! session run in-process, behind `mimonet-linkd`, or replayed from a
//! capture file can be compared field-for-field. Scoring claims decoded
//! frames against the sent PSDUs by exact byte equality (one claim per
//! frame — duplicates don't double count), the same discipline as the
//! chaos harness.

use crate::wire::{DecodedFrame, SessionConfig};
use mimonet::blocks::build_link_flowgraph;
use mimonet::config::{RxConfig, TxConfig};
use mimonet::link::LinkStats;
use mimonet::rx::{RxFrame, ScanStats};
use mimonet::tx::Transmitter;
use mimonet_channel::{ChannelConfig, ChannelSim};
use mimonet_dsp::complex::Complex64;
use mimonet_runtime::{GraphSnapshot, Message, MessageHub};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Hard ceiling on per-frame payload a session may request.
pub const MAX_SESSION_PAYLOAD: u32 = 2048;
/// Hard ceiling on frames per session.
pub const MAX_SESSION_FRAMES: u32 = 4096;

/// Salt between the master seed and the payload RNG, so payload bytes
/// and channel noise never share a stream.
const PSDU_SEED_SALT: u64 = mimonet_dsp::seedtree::PSDU_SALT;
/// Salt for the capture-path channel simulator (mirrors `LinkSim`).
const CHANNEL_SEED_SALT: u64 = mimonet_dsp::seedtree::CHANNEL_SALT;

/// Which scheduler executes the session flowgraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Deterministic single-threaded scheduler (`Flowgraph::run`).
    SingleThread,
    /// Supervised thread-per-block scheduler (`Flowgraph::run_threaded`)
    /// — what `mimonet-linkd` uses, one graph per client session.
    Threaded,
}

/// A failed session, typed.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionError {
    /// The request was invalid (bad MCS, oversized payload, ...).
    BadConfig(String),
    /// The flowgraph failed (block error, panic, stall).
    Graph(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::BadConfig(d) => write!(f, "bad session config: {d}"),
            SessionError::Graph(d) => write!(f, "session flowgraph failed: {d}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Everything a completed session produced.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// Decoded frames in decode order.
    pub decoded: Vec<DecodedFrame>,
    /// Delivery statistics scored against the sent PSDUs.
    pub stats: LinkStats,
    /// Per-block scheduler telemetry for the session's flowgraph.
    pub telemetry: GraphSnapshot,
}

/// Validates the knobs a remote client controls.
pub fn validate_config(cfg: &SessionConfig) -> Result<TxConfig, SessionError> {
    let tx_cfg = TxConfig::new(cfg.mcs)
        .map_err(|_| SessionError::BadConfig(format!("invalid MCS index {}", cfg.mcs)))?;
    if cfg.payload_len == 0 || cfg.payload_len > MAX_SESSION_PAYLOAD {
        return Err(SessionError::BadConfig(format!(
            "payload_len {} outside 1..={MAX_SESSION_PAYLOAD}",
            cfg.payload_len
        )));
    }
    if cfg.n_frames == 0 || cfg.n_frames > MAX_SESSION_FRAMES {
        return Err(SessionError::BadConfig(format!(
            "n_frames {} outside 1..={MAX_SESSION_FRAMES}",
            cfg.n_frames
        )));
    }
    if !cfg.snr_db.is_finite() {
        return Err(SessionError::BadConfig("snr_db must be finite".into()));
    }
    Ok(tx_cfg)
}

/// The session's PSDUs — a pure function of the config.
pub fn session_psdus(cfg: &SessionConfig) -> Vec<Vec<u8>> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ PSDU_SEED_SALT);
    (0..cfg.n_frames)
        .map(|_| (0..cfg.payload_len).map(|_| rng.gen()).collect())
        .collect()
}

/// Runs one session's flowgraph locally and scores it. This is both the
/// daemon's per-connection body and the reference the loopback tests
/// compare a served session against.
pub fn run_session(
    cfg: &SessionConfig,
    scheduler: Scheduler,
) -> Result<SessionOutcome, SessionError> {
    let tx_cfg = validate_config(cfg)?;
    let n_streams = tx_cfg.mcs.n_streams;
    let psdus = session_psdus(cfg);
    let flat: Vec<u8> = psdus.concat();
    let chan_cfg = ChannelConfig::awgn(n_streams, n_streams, cfg.snr_db);
    let rx_cfg = RxConfig::new(n_streams);
    let (mut fg, _sink, _ids) = build_link_flowgraph(
        tx_cfg,
        chan_cfg,
        rx_cfg,
        &flat,
        cfg.payload_len as usize,
        cfg.seed,
    );
    let tel = fg.instrument();
    let hub = Arc::new(MessageHub::new());
    let frames_sub = hub.subscribe("mimonet.frames");
    let snr_sub = hub.subscribe("mimonet.snr");
    match scheduler {
        Scheduler::SingleThread => fg.run(&hub),
        Scheduler::Threaded => fg.run_threaded(hub.clone()),
    }
    .map_err(|e| SessionError::Graph(e.to_string()))?;

    // RxBlock publishes one snr + one frame per decode, from one thread,
    // so the two topics pair up positionally under either scheduler.
    let frames = frames_sub.drain();
    let snrs = snr_sub.drain();
    let decoded: Vec<DecodedFrame> = frames
        .into_iter()
        .zip(snrs)
        .enumerate()
        .map(|(i, (f, s))| {
            let psdu = match f {
                Message::Bytes(b) => b,
                other => panic!("unexpected frame message {other:?}"),
            };
            let snr_db = match s {
                Message::F64(v) => v,
                other => panic!("unexpected snr message {other:?}"),
            };
            DecodedFrame {
                index: i as u32,
                snr_db,
                psdu,
            }
        })
        .collect();
    let stats = score_decoded(&psdus, &decoded);
    Ok(SessionOutcome {
        decoded,
        stats,
        telemetry: tel.snapshot(),
    })
}

/// Scores streamed/decoded frames against the sent PSDUs.
pub fn score_decoded(sent: &[Vec<u8>], decoded: &[DecodedFrame]) -> LinkStats {
    let mut stats = LinkStats::default();
    let mut claimed = vec![false; decoded.len()];
    for psdu in sent {
        let hit = decoded
            .iter()
            .enumerate()
            .find(|(i, d)| !claimed[*i] && &d.psdu == psdu)
            .map(|(i, _)| i);
        match hit {
            Some(i) => {
                claimed[i] = true;
                stats.per.record_ok();
                stats.outcomes.record_ok();
                stats.snr_est_db.push(decoded[i].snr_db);
            }
            None => {
                stats.per.record_sync_failure();
                stats.outcomes.record_sync_miss();
            }
        }
    }
    stats
}

/// Scores `Receiver::scan` output against the sent PSDUs — the capture
/// replay path's scoring.
pub fn score_scan(sent: &[Vec<u8>], frames: &[(usize, RxFrame)], scan: &ScanStats) -> LinkStats {
    let decoded: Vec<DecodedFrame> = frames
        .iter()
        .enumerate()
        .map(|(i, (_, f))| DecodedFrame {
            index: i as u32,
            snr_db: f.snr_db,
            psdu: f.psdu.clone(),
        })
        .collect();
    let mut stats = score_decoded(sent, &decoded);
    stats.recovery.record_rescans(scan.rescans as u64);
    stats
}

/// An over-the-air capture: the received per-antenna streams and the
/// PSDUs that produced them.
pub type LinkCapture = (Vec<Vec<Complex64>>, Vec<Vec<u8>>);

/// Builds a multi-frame over-the-air capture for a session config: the
/// sent PSDUs transmitted back-to-back (with lead-in and inter-frame
/// gaps) through the session's AWGN channel — what a recorder at the
/// receive antennas would have seen. Returns the received streams and
/// the PSDUs that went in.
pub fn build_link_capture(cfg: &SessionConfig) -> Result<LinkCapture, SessionError> {
    const LEAD_IN: usize = 160;
    const GAP: usize = 240;
    let tx_cfg = validate_config(cfg)?;
    let n_streams = tx_cfg.mcs.n_streams;
    let tx = Transmitter::new(tx_cfg);
    let psdus = session_psdus(cfg);
    let mut capture: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; LEAD_IN]; n_streams];
    for psdu in &psdus {
        let streams = tx.transmit(psdu).expect("validated PSDU");
        for (c, s) in capture.iter_mut().zip(&streams) {
            c.extend_from_slice(s);
            c.extend(std::iter::repeat_n(Complex64::ZERO, GAP));
        }
    }
    let chan_cfg = ChannelConfig::awgn(n_streams, n_streams, cfg.snr_db);
    let mut sim = ChannelSim::new(chan_cfg, cfg.seed ^ CHANNEL_SEED_SALT);
    let (rx_streams, _truth) = sim.apply(&capture);
    Ok((rx_streams, psdus))
}

/// Projects one link of a scenario file onto a [`SessionConfig`]: the
/// link's base MCS, payload and SNR; `n_frames` from the scenario's
/// rounds; and the seed the scenario engine would derive for that link
/// (`seedtree::name_seed(scenario_seed, LINK_TAG, name)`). A session
/// served from this config is the single-link AWGN projection of the
/// scenario link — same rate, same traffic shape, same seed root — so
/// `mimonet-linkd --scenario FILE --link NAME` and the scenario engine
/// agree on what "link NAME" means.
pub fn session_from_scenario(
    path: &std::path::Path,
    link_name: &str,
) -> Result<SessionConfig, SessionError> {
    let spec = mimonet::scenario::ScenarioSpec::from_file(path)
        .map_err(|e| SessionError::BadConfig(e.to_string()))?;
    let link = spec
        .links
        .iter()
        .find(|l| l.name == link_name)
        .ok_or_else(|| {
            let names: Vec<&str> = spec.links.iter().map(|l| l.name.as_str()).collect();
            SessionError::BadConfig(format!(
                "scenario {:?} has no link {link_name:?} (links: {names:?})",
                spec.name
            ))
        })?;
    let cfg = SessionConfig {
        mcs: link.mcs,
        payload_len: link.payload_len as u32,
        n_frames: spec.rounds.min(MAX_SESSION_FRAMES as usize) as u32,
        snr_db: link.snr_db,
        seed: mimonet_dsp::seedtree::name_seed(
            spec.seed,
            mimonet_dsp::seedtree::LINK_TAG,
            &link.name,
        ),
    };
    validate_config(&cfg)?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet::rx::Receiver;

    fn cfg() -> SessionConfig {
        SessionConfig {
            mcs: 8,
            payload_len: 60,
            n_frames: 3,
            snr_db: 30.0,
            seed: 7,
        }
    }

    #[test]
    fn psdus_are_seed_deterministic() {
        assert_eq!(session_psdus(&cfg()), session_psdus(&cfg()));
        let other = SessionConfig { seed: 8, ..cfg() };
        assert_ne!(session_psdus(&cfg()), session_psdus(&other));
    }

    #[test]
    fn clean_session_delivers_every_frame() {
        let out = run_session(&cfg(), Scheduler::SingleThread).unwrap();
        assert_eq!(out.decoded.len(), 3);
        assert_eq!(out.stats.per.sent(), 3);
        assert_eq!(out.stats.per.ok(), 3);
        assert_eq!(out.stats.outcomes.total(), 3);
        assert!(!out.telemetry.blocks.is_empty());
    }

    #[test]
    fn schedulers_agree_bit_for_bit() {
        let a = run_session(&cfg(), Scheduler::SingleThread).unwrap();
        let b = run_session(&cfg(), Scheduler::Threaded).unwrap();
        assert_eq!(a.decoded, b.decoded);
        assert_eq!(
            serde::json::to_string(&serde::Serialize::serialize(&a.stats)),
            serde::json::to_string(&serde::Serialize::serialize(&b.stats)),
        );
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        for bad in [
            SessionConfig { mcs: 77, ..cfg() },
            SessionConfig {
                payload_len: 0,
                ..cfg()
            },
            SessionConfig {
                payload_len: MAX_SESSION_PAYLOAD + 1,
                ..cfg()
            },
            SessionConfig {
                n_frames: 0,
                ..cfg()
            },
            SessionConfig {
                n_frames: MAX_SESSION_FRAMES + 1,
                ..cfg()
            },
            SessionConfig {
                snr_db: f64::NAN,
                ..cfg()
            },
        ] {
            assert!(matches!(
                run_session(&bad, Scheduler::SingleThread),
                Err(SessionError::BadConfig(_))
            ));
        }
    }

    #[test]
    fn capture_scan_scores_like_the_link() {
        let (streams, psdus) = build_link_capture(&cfg()).unwrap();
        let rx = Receiver::new(RxConfig::new(2));
        let (frames, scan) = rx.scan(&streams);
        let stats = score_scan(&psdus, &frames, &scan);
        assert_eq!(stats.per.sent(), 3);
        assert_eq!(stats.per.ok(), 3, "clean 30 dB capture should decode");
    }

    #[test]
    fn scenario_link_projects_to_session_config() {
        let dir = std::env::temp_dir().join(format!("mimonet_scn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.toml");
        std::fs::write(
            &path,
            "name = \"pair\"\nseed = 7\nrounds = 5\n\
             [[links]]\nname = \"uplink\"\nmcs = 9\npayload_len = 100\nsnr_db = 27.0\n\
             [[links]]\nname = \"downlink\"\n",
        )
        .unwrap();
        let cfg = session_from_scenario(&path, "uplink").expect("valid link");
        assert_eq!(cfg.mcs, 9);
        assert_eq!(cfg.payload_len, 100);
        assert_eq!(cfg.n_frames, 5);
        assert_eq!(cfg.snr_db, 27.0);
        assert_eq!(
            cfg.seed,
            mimonet_dsp::seedtree::name_seed(7, mimonet_dsp::seedtree::LINK_TAG, "uplink"),
            "session seed must match the scenario engine's link seed"
        );
        // The projected config must actually run.
        let outcome = run_session(&cfg, Scheduler::SingleThread).expect("runnable");
        assert_eq!(outcome.stats.per.sent(), 5);

        let missing = session_from_scenario(&path, "sidelink");
        assert!(
            matches!(&missing, Err(SessionError::BadConfig(m)) if m.contains("uplink")),
            "unknown link must fail and list the real links: {missing:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scoring_never_double_claims() {
        let sent = vec![vec![1u8, 2], vec![1, 2]];
        let decoded = vec![DecodedFrame {
            index: 0,
            snr_db: 20.0,
            psdu: vec![1, 2],
        }];
        let stats = score_decoded(&sent, &decoded);
        assert_eq!(stats.per.ok(), 1);
        assert_eq!(stats.per.sent(), 2);
    }
}
