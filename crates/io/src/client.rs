//! Client library for `mimonet-linkd`.
//!
//! Speaks the wire protocol from the client side: `Hello` handshake,
//! then any number of [`LinkClient::run_session`] calls, each of which
//! collects the daemon's `FrameDecoded`* → `SessionStats` → `Telemetry`
//! reply into a [`SessionResult`]. Server-side refusals arrive as
//! [`ClientError::Server`] with the daemon's typed kind; wire faults as
//! [`ClientError::Wire`]. Used by the loopback integration tests, the
//! `--client`/`--selftest` modes of the `mimonet-linkd` binary, and
//! `bench_io`.

use crate::wire::{
    read_msg, write_msg, DecodedFrame, SessionConfig, WireError, WireMsg, WIRE_VERSION,
};
use std::net::{TcpStream, ToSocketAddrs};

/// A failed client operation, typed.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// The wire itself failed (truncation, CRC, disconnect, ...).
    Wire(WireError),
    /// The server refused or aborted the request with a typed report.
    Server {
        /// Machine-matchable kind (`"bad-config"`, `"session-graph"`,
        /// `"transport-*"`).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The server broke the reply sequence.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { kind, detail } => {
                write!(f, "server error [{kind}]: {detail}")
            }
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One served session's complete reply.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionResult {
    /// Decoded frames, in the order the daemon's receiver produced them.
    pub frames: Vec<DecodedFrame>,
    /// The session's `LinkStats`, JSON-rendered by the server.
    pub stats_json: String,
    /// The session flowgraph's `GraphSnapshot`, JSON-rendered.
    pub telemetry_json: String,
}

/// A connected `mimonet-linkd` client.
pub struct LinkClient {
    stream: TcpStream,
}

impl LinkClient {
    /// Connects and completes the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let mut stream = TcpStream::connect(addr).map_err(WireError::from)?;
        stream.set_nodelay(true).ok();
        write_msg(
            &mut stream,
            &WireMsg::Hello {
                version: WIRE_VERSION,
            },
        )?;
        match read_msg(&mut stream)? {
            WireMsg::Hello { version } if version == WIRE_VERSION => Ok(Self { stream }),
            WireMsg::Hello { version } => Err(ClientError::Protocol(format!(
                "server speaks wire version {version}, client speaks {WIRE_VERSION}"
            ))),
            WireMsg::ErrorReport { kind, detail } => Err(ClientError::Server { kind, detail }),
            other => Err(ClientError::Protocol(format!(
                "expected Hello, got {other:?}"
            ))),
        }
    }

    /// Runs one link session on the daemon and collects the full reply.
    pub fn run_session(&mut self, cfg: &SessionConfig) -> Result<SessionResult, ClientError> {
        write_msg(&mut self.stream, &WireMsg::SessionRequest(cfg.clone()))?;
        let mut frames = Vec::new();
        let mut stats_json: Option<String> = None;
        loop {
            match read_msg(&mut self.stream)? {
                WireMsg::FrameDecoded(f) => frames.push(f),
                WireMsg::SessionStats { stats_json: s } => {
                    if stats_json.replace(s).is_some() {
                        return Err(ClientError::Protocol("duplicate SessionStats".into()));
                    }
                }
                // Telemetry terminates the session reply.
                WireMsg::Telemetry { telemetry_json } => {
                    let stats_json = stats_json.ok_or_else(|| {
                        ClientError::Protocol("Telemetry before SessionStats".into())
                    })?;
                    return Ok(SessionResult {
                        frames,
                        stats_json,
                        telemetry_json,
                    });
                }
                WireMsg::ErrorReport { kind, detail } => {
                    return Err(ClientError::Server { kind, detail })
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected reply: {other:?}"
                    )))
                }
            }
        }
    }

    /// Says goodbye and closes the connection.
    pub fn close(mut self) -> Result<(), ClientError> {
        write_msg(&mut self.stream, &WireMsg::Bye)?;
        // The server answers Bye best-effort; EOF is just as final.
        match crate::wire::read_msg_opt(&mut self.stream) {
            Ok(_) | Err(_) => Ok(()),
        }
    }

    /// The underlying stream — the fault-injection tests use this to
    /// write raw bytes and cut the connection mid-message.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
