//! SigMF-style capture files (`.iqcap`): record multi-antenna IQ once,
//! replay it bit-exactly forever.
//!
//! A capture is an ordinary wire-format stream —
//! [`WireMsg::CaptureHeader`] (the metadata "global segment"), a run of
//! [`WireMsg::IqChunk`]s with contiguous sequence numbers, then
//! [`WireMsg::Bye`] as the explicit terminator. Because it *is* the wire
//! format, the same reader/writer pair records to a file, replays from a
//! file, or streams over a TCP socket unchanged; samples travel as
//! `f64::to_bits`, so a replayed capture drives `Receiver::scan` to
//! bit-identical decodes (the replay-determinism acceptance test).
//!
//! A capture that ends without `Bye` — a torn copy, a killed recorder —
//! is reported as [`WireError::Truncated`], never silently shortened.

use crate::wire::{read_msg_opt, write_msg, CaptureMeta, IqChunk, WireError, WireMsg};
use mimonet::config::RxConfig;
use mimonet::rx::{Receiver, RxFrame, ScanStats};
use mimonet_dsp::complex::Complex64;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Default samples-per-antenna per chunk when splitting a stream.
pub const DEFAULT_CHUNK_LEN: usize = 4096;
/// Nominal capture sample rate (20 Msps, the 802.11n chains' rate).
pub const CAPTURE_SAMPLE_RATE_HZ: f64 = 20e6;

/// Writes a capture to any byte sink (file, socket, `Vec<u8>`).
pub struct CaptureWriter<W: Write> {
    w: W,
    n_ant: usize,
    seq: u64,
}

impl CaptureWriter<BufWriter<File>> {
    /// Creates a capture file, writing the header immediately.
    pub fn create(path: impl AsRef<Path>, meta: &CaptureMeta) -> Result<Self, WireError> {
        let file = File::create(path).map_err(WireError::from)?;
        Self::new(BufWriter::new(file), meta)
    }
}

impl<W: Write> CaptureWriter<W> {
    /// Wraps a sink, writing the capture header immediately.
    pub fn new(mut w: W, meta: &CaptureMeta) -> Result<Self, WireError> {
        write_msg(&mut w, &WireMsg::CaptureHeader(meta.clone()))?;
        Ok(Self {
            w,
            n_ant: meta.n_ant as usize,
            seq: 0,
        })
    }

    /// Writes one chunk (all antennas, equal lengths).
    pub fn write_chunk(&mut self, streams: &[&[Complex64]]) -> Result<(), WireError> {
        assert_eq!(streams.len(), self.n_ant, "antenna count mismatch");
        let len = streams[0].len();
        assert!(
            streams.iter().all(|s| s.len() == len),
            "ragged antenna streams"
        );
        let chunk = IqChunk {
            seq: self.seq,
            samples: streams.iter().map(|s| s.to_vec()).collect(),
        };
        write_msg(&mut self.w, &WireMsg::IqChunk(chunk))?;
        self.seq += 1;
        Ok(())
    }

    /// Splits full per-antenna streams into `chunk_len`-sample chunks and
    /// writes them all.
    pub fn write_streams(
        &mut self,
        streams: &[Vec<Complex64>],
        chunk_len: usize,
    ) -> Result<(), WireError> {
        assert!(chunk_len > 0, "chunk length must be nonzero");
        let len = streams.iter().map(|s| s.len()).min().unwrap_or(0);
        let mut start = 0;
        while start < len {
            let end = (start + chunk_len).min(len);
            let views: Vec<&[Complex64]> = streams.iter().map(|s| &s[start..end]).collect();
            self.write_chunk(&views)?;
            start = end;
        }
        Ok(())
    }

    /// Chunks written so far.
    pub fn chunks_written(&self) -> u64 {
        self.seq
    }

    /// Writes the `Bye` terminator, flushes, and returns the inner sink.
    pub fn finish(mut self) -> Result<W, WireError> {
        write_msg(&mut self.w, &WireMsg::Bye)?;
        self.w.flush().map_err(WireError::from)?;
        Ok(self.w)
    }
}

/// Reads a capture from any byte source.
pub struct CaptureReader<R: Read> {
    r: R,
    meta: CaptureMeta,
    next_seq: u64,
    done: bool,
}

impl CaptureReader<BufReader<File>> {
    /// Opens a capture file and reads its header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, WireError> {
        let file = File::open(path).map_err(WireError::from)?;
        Self::new(BufReader::new(file))
    }
}

impl<R: Read> CaptureReader<R> {
    /// Wraps a source, reading the capture header immediately.
    pub fn new(mut r: R) -> Result<Self, WireError> {
        match read_msg_opt(&mut r)? {
            Some(WireMsg::CaptureHeader(meta)) => Ok(Self {
                r,
                meta,
                next_seq: 0,
                done: false,
            }),
            Some(_) => Err(WireError::BadPayload("capture must start with a header")),
            None => Err(WireError::Truncated {
                context: "capture header",
            }),
        }
    }

    /// The capture's metadata.
    pub fn meta(&self) -> &CaptureMeta {
        &self.meta
    }

    /// Next chunk, or `None` after the `Bye` terminator. Sequence gaps
    /// and a missing terminator are typed errors.
    pub fn next_chunk(&mut self) -> Result<Option<IqChunk>, WireError> {
        if self.done {
            return Ok(None);
        }
        match read_msg_opt(&mut self.r)? {
            Some(WireMsg::IqChunk(chunk)) => {
                if chunk.samples.len() != self.meta.n_ant as usize {
                    return Err(WireError::BadPayload("chunk antenna count"));
                }
                if chunk.seq != self.next_seq {
                    return Err(WireError::BadPayload("chunk sequence gap"));
                }
                self.next_seq += 1;
                Ok(Some(chunk))
            }
            Some(WireMsg::Bye) => {
                self.done = true;
                Ok(None)
            }
            Some(_) => Err(WireError::BadPayload("unexpected message in capture")),
            // EOF without Bye: the capture was cut short. CRCs cannot see
            // a loss of whole trailing frames, so the terminator must.
            None => Err(WireError::Truncated {
                context: "capture body",
            }),
        }
    }

    /// Reads every remaining chunk into contiguous per-antenna streams.
    pub fn read_streams(&mut self) -> Result<Vec<Vec<Complex64>>, WireError> {
        let mut streams: Vec<Vec<Complex64>> = vec![Vec::new(); self.meta.n_ant as usize];
        while let Some(chunk) = self.next_chunk()? {
            for (s, ant) in streams.iter_mut().zip(&chunk.samples) {
                s.extend_from_slice(ant);
            }
        }
        Ok(streams)
    }
}

/// Records full per-antenna streams into a capture file in one call.
pub fn write_capture(
    path: impl AsRef<Path>,
    meta: &CaptureMeta,
    streams: &[Vec<Complex64>],
) -> Result<(), WireError> {
    let mut w = CaptureWriter::create(path, meta)?;
    w.write_streams(streams, DEFAULT_CHUNK_LEN)?;
    w.finish()?;
    Ok(())
}

/// Reads a capture file back into contiguous per-antenna streams.
pub fn read_capture(
    path: impl AsRef<Path>,
) -> Result<(CaptureMeta, Vec<Vec<Complex64>>), WireError> {
    let mut r = CaptureReader::open(path)?;
    let streams = r.read_streams()?;
    Ok((r.meta.clone(), streams))
}

/// What a replayed capture decodes to: the capture metadata, the
/// `(offset, frame)` pairs `Receiver::scan` found, and its scan stats.
pub type ReplayOutcome = (CaptureMeta, Vec<(usize, RxFrame)>, ScanStats);

/// Replays a capture file through `Receiver::scan` — the offline decode
/// path. Bit-identical samples in, bit-identical frames out.
pub fn replay_scan(path: impl AsRef<Path>, rx_cfg: RxConfig) -> Result<ReplayOutcome, WireError> {
    let (meta, streams) = read_capture(path)?;
    let receiver = Receiver::new(rx_cfg);
    let (frames, stats) = receiver.scan(&streams);
    Ok((meta, frames, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(n_ant: u16) -> CaptureMeta {
        CaptureMeta {
            n_ant,
            sample_rate_hz: CAPTURE_SAMPLE_RATE_HZ,
            seed: 5,
            description: "test capture".into(),
        }
    }

    fn ramp(n: usize, scale: f64) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new(i as f64 * scale, -(i as f64) / 3.0))
            .collect()
    }

    #[test]
    fn in_memory_round_trip_is_bit_exact() {
        let streams = vec![ramp(1000, 1.0), ramp(1000, -0.25)];
        let mut buf = Vec::new();
        let mut w = CaptureWriter::new(&mut buf, &meta(2)).unwrap();
        w.write_streams(&streams, 300).unwrap(); // uneven split on purpose
        assert_eq!(w.chunks_written(), 4);
        w.finish().unwrap();

        let mut r = CaptureReader::new(&buf[..]).unwrap();
        assert_eq!(r.meta(), &meta(2));
        let back = r.read_streams().unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in streams.iter().zip(&back) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn missing_terminator_is_truncation() {
        let mut buf = Vec::new();
        let mut w = CaptureWriter::new(&mut buf, &meta(1)).unwrap();
        w.write_streams(&[ramp(64, 1.0)], 64).unwrap();
        // No finish(): simulate a torn capture.
        let mut r = CaptureReader::new(&buf[..]).unwrap();
        assert!(r.next_chunk().unwrap().is_some());
        assert!(matches!(r.next_chunk(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn sequence_gap_is_detected() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &WireMsg::CaptureHeader(meta(1))).unwrap();
        write_msg(
            &mut buf,
            &WireMsg::IqChunk(IqChunk {
                seq: 3, // should be 0
                samples: vec![ramp(8, 1.0)],
            }),
        )
        .unwrap();
        let mut r = CaptureReader::new(&buf[..]).unwrap();
        assert!(matches!(r.next_chunk(), Err(WireError::BadPayload(_))));
    }

    #[test]
    fn header_is_mandatory() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &WireMsg::Bye).unwrap();
        assert!(matches!(
            CaptureReader::new(&buf[..]),
            Err(WireError::BadPayload(_))
        ));
        assert!(matches!(
            CaptureReader::new(&[][..]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("mimonet_io_capture_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.iqcap");
        let streams = vec![ramp(500, 0.5)];
        write_capture(&path, &meta(1), &streams).unwrap();
        let (m, back) = read_capture(&path).unwrap();
        assert_eq!(m.n_ant, 1);
        assert_eq!(back, streams);
        std::fs::remove_file(&path).ok();
    }
}
