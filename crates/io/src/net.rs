//! TCP/UDP source and sink blocks for `mimonet-runtime` flowgraphs.
//!
//! Sinks accumulate per-antenna streams into [`IqChunk`]s and write them
//! as wire frames; sources decode wire frames back into per-antenna
//! streams through a [`BoundedQueue`] fed by a reader thread. Queue
//! capacity is the backpressure knob; overflow drops are counted in the
//! queue's always-on stats and mirrored into
//! `BlockTelemetry::queue_drops` when the flowgraph is instrumented, so
//! `fig_profile` shows shed load next to backpressure stalls.
//!
//! The TCP sink dials with exponential backoff and re-dials once on a
//! mid-stream write failure; when the transport is truly gone it returns
//! a typed [`BlockError`] whose kind echoes the PR-2 fault taxonomy
//! (`transport-disconnect`, `transport-truncation`, `transport-crc`,
//! `transport-desync`) — transport faults degrade to typed errors, never
//! panics.
//!
//! Network **sources** never return [`WorkStatus::Blocked`]: the
//! threaded scheduler treats a blocked source as exhausted. They idle in
//! short timed pops and report `Progress`, so run them under
//! `Flowgraph::run_threaded` (the stall watchdog still catches a feed
//! that dies without closing the socket).

use crate::queue::{BoundedQueue, OverflowPolicy};
use crate::wire::{decode, encode, read_msg_opt, IqChunk, WireError, WireMsg};
use mimonet_dsp::complex::Complex64;
use mimonet_runtime::{
    convert, Block, BlockCtx, BlockError, BlockTelemetry, InputBuffer, OutputBuffer, WorkStatus,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Transport tuning shared by the stream blocks.
#[derive(Clone, Debug)]
pub struct TransportConfig {
    /// Samples per antenna per [`IqChunk`].
    pub chunk_len: usize,
    /// Source-side bounded queue depth, chunks.
    pub queue_depth: usize,
    /// What a full source queue does to fresh chunks.
    pub policy: OverflowPolicy,
    /// Connection attempts before the TCP sink gives up.
    pub connect_retries: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Retry delay ceiling.
    pub backoff_max: Duration,
    /// Socket read timeout — the cadence at which reader threads notice
    /// a stop request.
    pub read_timeout: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            chunk_len: 4096,
            queue_depth: 32,
            policy: OverflowPolicy::DropOldest,
            connect_retries: 5,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(1),
            read_timeout: Duration::from_millis(100),
        }
    }
}

/// Cumulative transport counters, shared with tests/monitors via `Arc`.
#[derive(Debug, Default)]
pub struct TransportStats {
    chunks_sent: AtomicU64,
    chunks_recv: AtomicU64,
    reconnects: AtomicU64,
    decode_errors: AtomicU64,
    seq_gaps: AtomicU64,
    send_drops: AtomicU64,
}

impl TransportStats {
    /// Chunks written to the wire.
    pub fn chunks_sent(&self) -> u64 {
        self.chunks_sent.load(Ordering::Relaxed)
    }
    /// Chunks received and enqueued (pre-overflow).
    pub fn chunks_recv(&self) -> u64 {
        self.chunks_recv.load(Ordering::Relaxed)
    }
    /// Successful re-dials after a failed connect or a dead stream.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }
    /// Datagrams/frames that failed to decode (UDP keeps going).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }
    /// Chunks missing from the sequence (lost datagrams, reordering).
    pub fn seq_gaps(&self) -> u64 {
        self.seq_gaps.load(Ordering::Relaxed)
    }
    /// Chunks a lossy sink failed to transmit (UDP send errors).
    pub fn send_drops(&self) -> u64 {
        self.send_drops.load(Ordering::Relaxed)
    }
}

/// Maps a wire failure onto the transport fault taxonomy.
pub fn transport_error(e: &WireError) -> BlockError {
    let kind = match e {
        WireError::Truncated { .. } => "transport-truncation",
        WireError::BadCrc { .. } => "transport-crc",
        WireError::Io(_) => "transport-disconnect",
        _ => "transport-desync",
    };
    BlockError::new(kind, e.to_string())
}

fn backoff_delay(cfg: &TransportConfig, attempt: u32) -> Duration {
    let exp = cfg.backoff_base.saturating_mul(1u32 << attempt.min(16));
    exp.min(cfg.backoff_max)
}

/// `Read` adapter that turns socket read timeouts into retries and a
/// stop request into a clean EOF, so `read_msg_opt` only ever sees real
/// bytes, real errors, or the end of the stream.
struct CancellableStream<'a> {
    inner: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl Read for CancellableStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return Ok(0);
            }
            match (&mut self.inner).read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                r => return r,
            }
        }
    }
}

// ---------------------------------------------------------------------
// TCP sink
// ---------------------------------------------------------------------

/// Streams per-antenna samples to a TCP peer as [`IqChunk`]s, dialing
/// (and re-dialing) with exponential backoff. Sends [`WireMsg::Bye`] and
/// finishes when every input is exhausted.
pub struct TcpChunkSink {
    addr: String,
    n_ant: usize,
    cfg: TransportConfig,
    conn: Option<TcpStream>,
    ever_connected: bool,
    seq: u64,
    stats: Arc<TransportStats>,
}

impl TcpChunkSink {
    /// Creates a sink for `n_ant` antenna streams; connects lazily on
    /// first use so the flowgraph can be built before the peer is up.
    pub fn new(addr: impl Into<String>, n_ant: usize, cfg: TransportConfig) -> Self {
        assert!(n_ant >= 1);
        assert!(cfg.chunk_len > 0);
        Self {
            addr: addr.into(),
            n_ant,
            cfg,
            conn: None,
            ever_connected: false,
            seq: 0,
            stats: Arc::new(TransportStats::default()),
        }
    }

    /// Shared transport counters.
    pub fn stats(&self) -> Arc<TransportStats> {
        self.stats.clone()
    }

    fn ensure_connected(&mut self) -> Result<(), BlockError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            match TcpStream::connect(&self.addr) {
                Ok(s) => {
                    s.set_nodelay(true).ok();
                    if self.ever_connected || attempt > 0 {
                        self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    self.ever_connected = true;
                    self.conn = Some(s);
                    return Ok(());
                }
                Err(e) => {
                    if attempt >= self.cfg.connect_retries {
                        return Err(BlockError::new(
                            "transport-disconnect",
                            format!(
                                "connect to {} failed after {} attempts: {e}",
                                self.addr,
                                attempt + 1
                            ),
                        ));
                    }
                    std::thread::sleep(backoff_delay(&self.cfg, attempt));
                    attempt += 1;
                }
            }
        }
    }

    fn send(&mut self, msg: &WireMsg) -> Result<(), BlockError> {
        self.ensure_connected()?;
        let frame = encode(msg);
        let write = |conn: &mut TcpStream| conn.write_all(&frame);
        if let Err(first) = write(self.conn.as_mut().expect("connected")) {
            // The stream died mid-session: re-dial once with backoff and
            // retry the same frame before giving up.
            self.conn = None;
            self.ensure_connected().map_err(|e| {
                BlockError::new(
                    "transport-disconnect",
                    format!("write failed ({first}); reconnect failed: {}", e.detail),
                )
            })?;
            write(self.conn.as_mut().expect("connected")).map_err(|e| {
                BlockError::new(
                    "transport-disconnect",
                    format!("write failed twice: {first}; then {e}"),
                )
            })?;
        }
        Ok(())
    }

    fn send_chunk(&mut self, samples: Vec<Vec<Complex64>>) -> Result<(), BlockError> {
        let chunk = IqChunk {
            seq: self.seq,
            samples,
        };
        self.send(&WireMsg::IqChunk(chunk))?;
        self.seq += 1;
        self.stats.chunks_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Block for TcpChunkSink {
    fn name(&self) -> &str {
        "tcp_chunk_sink"
    }
    fn num_inputs(&self) -> usize {
        self.n_ant
    }
    fn num_outputs(&self) -> usize {
        0
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        _outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let mut progressed = false;
        loop {
            let ready = inputs.iter().map(|i| i.available()).min().unwrap_or(0);
            if ready >= self.cfg.chunk_len {
                let take = self.cfg.chunk_len;
                let samples: Vec<Vec<Complex64>> = inputs
                    .iter_mut()
                    .map(|i| convert::to_complex(&i.take(take)))
                    .collect();
                if let Err(e) = self.send_chunk(samples) {
                    return WorkStatus::Error(e);
                }
                progressed = true;
                continue;
            }
            if inputs.iter().all(|i| i.is_finished()) {
                if ready > 0 {
                    // Flush the equal-length remainder.
                    let samples: Vec<Vec<Complex64>> = inputs
                        .iter_mut()
                        .map(|i| convert::to_complex(&i.take(ready)))
                        .collect();
                    if let Err(e) = self.send_chunk(samples) {
                        return WorkStatus::Error(e);
                    }
                }
                if let Err(e) = self.send(&WireMsg::Bye) {
                    return WorkStatus::Error(e);
                }
                if let Some(conn) = self.conn.as_mut() {
                    conn.flush().ok();
                }
                return WorkStatus::Done;
            }
            break;
        }
        if progressed {
            WorkStatus::Progress
        } else {
            WorkStatus::Blocked
        }
    }
}

// ---------------------------------------------------------------------
// TCP source
// ---------------------------------------------------------------------

/// Shared reader-side state between a source block and its thread.
struct SourceShared {
    queue: BoundedQueue<IqChunk>,
    error: Mutex<Option<BlockError>>,
    stats: TransportStats,
    stop: AtomicBool,
}

impl SourceShared {
    fn new(cfg: &TransportConfig) -> Arc<Self> {
        Arc::new(Self {
            queue: BoundedQueue::new(cfg.queue_depth, cfg.policy),
            error: Mutex::new(None),
            stats: TransportStats::default(),
            stop: AtomicBool::new(false),
        })
    }

    fn fail(&self, e: BlockError) {
        let mut g = self.error.lock().unwrap();
        if g.is_none() {
            *g = Some(e);
        }
    }

    fn accept_chunk(&self, chunk: IqChunk, n_ant: usize, next_seq: &mut u64) -> bool {
        if chunk.samples.len() != n_ant {
            self.fail(BlockError::new(
                "transport-desync",
                format!(
                    "chunk carries {} antennas, expected {n_ant}",
                    chunk.samples.len()
                ),
            ));
            return false;
        }
        if chunk.seq >= *next_seq {
            let gap = chunk.seq - *next_seq;
            if gap > 0 {
                self.stats.seq_gaps.fetch_add(gap, Ordering::Relaxed);
            }
            *next_seq = chunk.seq + 1;
            self.stats.chunks_recv.fetch_add(1, Ordering::Relaxed);
            self.queue.push(chunk);
        } else {
            // Stale reordered chunk: emitting it would scramble the
            // sample stream; count and discard.
            self.stats.seq_gaps.fetch_add(1, Ordering::Relaxed);
        }
        true
    }
}

fn tcp_reader_loop(stream: TcpStream, shared: &SourceShared, n_ant: usize) {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    let mut r = CancellableStream {
        inner: &stream,
        stop: &shared.stop,
    };
    let mut next_seq = 0u64;
    loop {
        match read_msg_opt(&mut r) {
            Ok(None) | Ok(Some(WireMsg::Bye)) => break,
            Ok(Some(WireMsg::CaptureHeader(m))) => {
                if m.n_ant as usize != n_ant {
                    shared.fail(BlockError::new(
                        "transport-desync",
                        format!("capture has {} antennas, source wired for {n_ant}", m.n_ant),
                    ));
                    break;
                }
            }
            Ok(Some(WireMsg::IqChunk(chunk))) => {
                if !shared.accept_chunk(chunk, n_ant, &mut next_seq) {
                    break;
                }
            }
            Ok(Some(_)) => {} // other control traffic: ignore
            Err(e) => {
                if !shared.stop.load(Ordering::Relaxed) {
                    shared.fail(transport_error(&e));
                }
                break;
            }
        }
    }
    shared.queue.close();
}

/// Receives [`IqChunk`]s from a TCP peer and replays them as per-antenna
/// sample streams. A reader thread feeds the bounded queue; the block
/// drains it. Finishes on `Bye`/EOF; wire faults surface as typed
/// errors.
pub struct TcpChunkSource {
    n_ant: usize,
    shared: Arc<SourceShared>,
    reader: Option<std::thread::JoinHandle<()>>,
    tel: Option<Arc<BlockTelemetry>>,
    reported_drops: u64,
}

impl TcpChunkSource {
    fn spawn(stream: TcpStream, n_ant: usize, cfg: &TransportConfig) -> Self {
        let shared = SourceShared::new(cfg);
        let reader = {
            let shared = shared.clone();
            std::thread::spawn(move || tcp_reader_loop(stream, &shared, n_ant))
        };
        Self {
            n_ant,
            shared,
            reader: Some(reader),
            tel: None,
            reported_drops: 0,
        }
    }

    /// Wraps an already-established stream (what `mimonet-linkd` uses
    /// after `accept`).
    pub fn from_stream(stream: TcpStream, n_ant: usize, cfg: TransportConfig) -> Self {
        Self::spawn(stream, n_ant, &cfg)
    }

    /// Connects to a remote sink.
    pub fn connect(
        addr: impl ToSocketAddrs,
        n_ant: usize,
        cfg: TransportConfig,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self::spawn(stream, n_ant, &cfg))
    }

    /// Binds a listener and accepts exactly one peer in the background;
    /// returns the source and the bound address (use port 0 to let the
    /// OS pick).
    pub fn listen(
        addr: impl ToSocketAddrs,
        n_ant: usize,
        cfg: TransportConfig,
    ) -> std::io::Result<(Self, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = SourceShared::new(&cfg);
        let reader = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let stream = loop {
                    if shared.stop.load(Ordering::Relaxed) {
                        shared.queue.close();
                        return;
                    }
                    match listener.accept() {
                        Ok((s, _)) => break s,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(e) => {
                            shared.fail(BlockError::new(
                                "transport-disconnect",
                                format!("accept failed: {e}"),
                            ));
                            shared.queue.close();
                            return;
                        }
                    }
                };
                stream.set_nonblocking(false).ok();
                tcp_reader_loop(stream, &shared, n_ant);
            })
        };
        Ok((
            Self {
                n_ant,
                shared,
                reader: Some(reader),
                tel: None,
                reported_drops: 0,
            },
            local,
        ))
    }

    /// Shared transport counters (the queue's drop stats live on the
    /// queue; see [`TcpChunkSource::queue_dropped`]).
    pub fn stats(&self) -> Arc<SourceStatsView> {
        Arc::new(SourceStatsView {
            shared: self.shared.clone(),
        })
    }

    /// Chunks lost to queue overflow so far.
    pub fn queue_dropped(&self) -> u64 {
        self.shared.queue.stats().dropped()
    }

    fn emit(&mut self, chunk: &IqChunk, outputs: &mut [OutputBuffer]) {
        for (out, ant) in outputs.iter_mut().zip(&chunk.samples) {
            out.push_slice(&convert::from_complex(ant));
        }
    }

    fn mirror_drops(&mut self) {
        if let Some(t) = &self.tel {
            let dropped = self.shared.queue.stats().dropped();
            if dropped > self.reported_drops {
                t.queue_drops.add(dropped - self.reported_drops);
                self.reported_drops = dropped;
            }
        }
    }
}

/// Read-only view over a source's reader-side counters.
pub struct SourceStatsView {
    shared: Arc<SourceShared>,
}

impl SourceStatsView {
    /// Chunks received and enqueued.
    pub fn chunks_recv(&self) -> u64 {
        self.shared.stats.chunks_recv()
    }
    /// Sequence gaps observed.
    pub fn seq_gaps(&self) -> u64 {
        self.shared.stats.seq_gaps()
    }
    /// Datagrams/frames that failed to decode.
    pub fn decode_errors(&self) -> u64 {
        self.shared.stats.decode_errors()
    }
    /// Chunks lost to queue overflow.
    pub fn queue_dropped(&self) -> u64 {
        self.shared.queue.stats().dropped()
    }
    /// Queue occupancy high-water mark.
    pub fn queue_highwater(&self) -> u64 {
        self.shared.queue.stats().highwater()
    }
}

impl Drop for TcpChunkSource {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.queue.close();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

impl Block for TcpChunkSource {
    fn name(&self) -> &str {
        "tcp_chunk_source"
    }
    fn num_inputs(&self) -> usize {
        0
    }
    fn num_outputs(&self) -> usize {
        self.n_ant
    }
    fn attach_telemetry(&mut self, tel: &Arc<BlockTelemetry>) {
        self.tel = Some(tel.clone());
    }
    fn work(
        &mut self,
        _inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        self.mirror_drops();
        let mut produced = false;
        while let Some(chunk) = self.shared.queue.try_pop() {
            self.emit(&chunk, outputs);
            produced = true;
        }
        if produced {
            return WorkStatus::Progress;
        }
        if self.shared.queue.is_terminated() {
            self.mirror_drops();
            if let Some(e) = self.shared.error.lock().unwrap().take() {
                return WorkStatus::Error(e);
            }
            return WorkStatus::Done;
        }
        // Idle-wait briefly; a source must not report Blocked (the
        // threaded scheduler would retire it).
        if let Some(chunk) = self.shared.queue.pop_timeout(Duration::from_millis(1)) {
            self.emit(&chunk, outputs);
        }
        WorkStatus::Progress
    }
}

// ---------------------------------------------------------------------
// UDP sink / source
// ---------------------------------------------------------------------

/// Largest datagram payload the UDP blocks will emit.
pub const MAX_DATAGRAM: usize = 60_000;

/// Streams [`IqChunk`]s as UDP datagrams — fire-and-forget transport for
/// live sample feeds. Send failures count as drops (UDP is lossy by
/// contract); a final [`WireMsg::Bye`] datagram marks end of stream.
pub struct UdpChunkSink {
    socket: UdpSocket,
    dest: String,
    n_ant: usize,
    cfg: TransportConfig,
    seq: u64,
    stats: Arc<TransportStats>,
    tel: Option<Arc<BlockTelemetry>>,
}

impl UdpChunkSink {
    /// Creates a sink sending to `dest`. The chunk size must fit one
    /// datagram: `chunk_len * n_ant * 16` bytes plus framing under
    /// [`MAX_DATAGRAM`].
    pub fn new(
        dest: impl Into<String>,
        n_ant: usize,
        cfg: TransportConfig,
    ) -> std::io::Result<Self> {
        assert!(n_ant >= 1);
        assert!(
            cfg.chunk_len * n_ant * 16 + 128 <= MAX_DATAGRAM,
            "chunk of {} samples x {n_ant} antennas exceeds one datagram",
            cfg.chunk_len
        );
        let socket = UdpSocket::bind("0.0.0.0:0")?;
        Ok(Self {
            socket,
            dest: dest.into(),
            n_ant,
            cfg,
            seq: 0,
            stats: Arc::new(TransportStats::default()),
            tel: None,
        })
    }

    /// Shared transport counters.
    pub fn stats(&self) -> Arc<TransportStats> {
        self.stats.clone()
    }

    fn send_datagram(&mut self, msg: &WireMsg) {
        let frame = encode(msg);
        match self.socket.send_to(&frame, &self.dest) {
            Ok(_) => {
                if matches!(msg, WireMsg::IqChunk(_)) {
                    self.stats.chunks_sent.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.stats.send_drops.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &self.tel {
                    t.queue_drops.incr();
                }
            }
        }
    }
}

impl Block for UdpChunkSink {
    fn name(&self) -> &str {
        "udp_chunk_sink"
    }
    fn num_inputs(&self) -> usize {
        self.n_ant
    }
    fn num_outputs(&self) -> usize {
        0
    }
    fn attach_telemetry(&mut self, tel: &Arc<BlockTelemetry>) {
        self.tel = Some(tel.clone());
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        _outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let mut progressed = false;
        loop {
            let ready = inputs.iter().map(|i| i.available()).min().unwrap_or(0);
            let take = if ready >= self.cfg.chunk_len {
                self.cfg.chunk_len
            } else if inputs.iter().all(|i| i.is_finished()) && ready > 0 {
                ready
            } else if inputs.iter().all(|i| i.is_finished()) {
                self.send_datagram(&WireMsg::Bye);
                return WorkStatus::Done;
            } else {
                break;
            };
            let samples: Vec<Vec<Complex64>> = inputs
                .iter_mut()
                .map(|i| convert::to_complex(&i.take(take)))
                .collect();
            let chunk = IqChunk {
                seq: self.seq,
                samples,
            };
            self.seq += 1;
            self.send_datagram(&WireMsg::IqChunk(chunk));
            progressed = true;
        }
        if progressed {
            WorkStatus::Progress
        } else {
            WorkStatus::Blocked
        }
    }
}

/// Receives [`IqChunk`] datagrams. Lost or reordered datagrams are
/// counted as sequence gaps and the stream keeps going — UDP faults are
/// data-quality events, not errors. Finishes on a `Bye` datagram.
pub struct UdpChunkSource {
    n_ant: usize,
    shared: Arc<SourceShared>,
    reader: Option<std::thread::JoinHandle<()>>,
    tel: Option<Arc<BlockTelemetry>>,
    reported_drops: u64,
}

impl UdpChunkSource {
    /// Binds `addr` (port 0 picks a free port) and returns the source
    /// plus the bound address to point a [`UdpChunkSink`] at.
    pub fn bind(
        addr: impl ToSocketAddrs,
        n_ant: usize,
        cfg: TransportConfig,
    ) -> std::io::Result<(Self, SocketAddr)> {
        let socket = UdpSocket::bind(addr)?;
        let local = socket.local_addr()?;
        socket.set_read_timeout(Some(cfg.read_timeout))?;
        let shared = SourceShared::new(&cfg);
        let reader = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let mut buf = vec![0u8; 65_536];
                let mut next_seq = 0u64;
                loop {
                    if shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let n = match socket.recv_from(&mut buf) {
                        Ok((n, _)) => n,
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            continue
                        }
                        Err(e) => {
                            shared.fail(BlockError::new(
                                "transport-disconnect",
                                format!("udp recv failed: {e}"),
                            ));
                            break;
                        }
                    };
                    match decode(&buf[..n]) {
                        Ok((WireMsg::IqChunk(chunk), _)) => {
                            if !shared.accept_chunk(chunk, n_ant, &mut next_seq) {
                                break;
                            }
                        }
                        Ok((WireMsg::Bye, _)) => break,
                        Ok(_) => {} // other control datagrams: ignore
                        Err(_) => {
                            // A mangled datagram is a lossy-transport
                            // event, not a stream failure.
                            shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                shared.queue.close();
            })
        };
        Ok((
            Self {
                n_ant,
                shared,
                reader: Some(reader),
                tel: None,
                reported_drops: 0,
            },
            local,
        ))
    }

    /// Read-only view over the reader-side counters.
    pub fn stats(&self) -> Arc<SourceStatsView> {
        Arc::new(SourceStatsView {
            shared: self.shared.clone(),
        })
    }

    fn mirror_drops(&mut self) {
        if let Some(t) = &self.tel {
            let dropped = self.shared.queue.stats().dropped();
            if dropped > self.reported_drops {
                t.queue_drops.add(dropped - self.reported_drops);
                self.reported_drops = dropped;
            }
        }
    }
}

impl Drop for UdpChunkSource {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.queue.close();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

impl Block for UdpChunkSource {
    fn name(&self) -> &str {
        "udp_chunk_source"
    }
    fn num_inputs(&self) -> usize {
        0
    }
    fn num_outputs(&self) -> usize {
        self.n_ant
    }
    fn attach_telemetry(&mut self, tel: &Arc<BlockTelemetry>) {
        self.tel = Some(tel.clone());
    }
    fn work(
        &mut self,
        _inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        self.mirror_drops();
        let mut produced = false;
        while let Some(chunk) = self.shared.queue.try_pop() {
            for (out, ant) in outputs.iter_mut().zip(&chunk.samples) {
                out.push_slice(&convert::from_complex(ant));
            }
            produced = true;
        }
        if produced {
            return WorkStatus::Progress;
        }
        if self.shared.queue.is_terminated() {
            self.mirror_drops();
            if let Some(e) = self.shared.error.lock().unwrap().take() {
                return WorkStatus::Error(e);
            }
            return WorkStatus::Done;
        }
        if let Some(chunk) = self.shared.queue.pop_timeout(Duration::from_millis(1)) {
            for (out, ant) in outputs.iter_mut().zip(&chunk.samples) {
                out.push_slice(&convert::from_complex(ant));
            }
        }
        WorkStatus::Progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_msg;

    #[test]
    fn wire_faults_map_onto_the_taxonomy() {
        let cases = [
            (
                WireError::Truncated { context: "x" },
                "transport-truncation",
            ),
            (
                WireError::BadCrc {
                    expected: 1,
                    got: 2,
                },
                "transport-crc",
            ),
            (WireError::Io("reset".into()), "transport-disconnect"),
            (WireError::BadMagic([0; 4]), "transport-desync"),
            (WireError::UnknownType(3), "transport-desync"),
        ];
        for (e, kind) in cases {
            assert_eq!(transport_error(&e).kind, kind, "{e}");
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = TransportConfig::default();
        assert_eq!(backoff_delay(&cfg, 0), Duration::from_millis(50));
        assert_eq!(backoff_delay(&cfg, 1), Duration::from_millis(100));
        assert_eq!(backoff_delay(&cfg, 10), cfg.backoff_max);
    }

    #[test]
    fn tcp_sink_gives_typed_error_when_peer_never_appears() {
        // Reserve a port, then close it so nothing listens there.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = TransportConfig {
            connect_retries: 1,
            backoff_base: Duration::from_millis(5),
            ..TransportConfig::default()
        };
        let mut sink = TcpChunkSink::new(dead.to_string(), 1, cfg);
        let err = sink.ensure_connected().unwrap_err();
        assert_eq!(err.kind, "transport-disconnect");
    }

    #[test]
    fn tcp_sink_dials_with_backoff_until_the_peer_arrives() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let server = std::thread::spawn(move || {
            // Let the first connect attempts fail, then start listening.
            std::thread::sleep(Duration::from_millis(60));
            let listener = TcpListener::bind(addr).unwrap();
            let (mut s, _) = listener.accept().unwrap();
            let msg = read_msg(&mut s).unwrap();
            matches!(msg, WireMsg::IqChunk(_))
        });
        let cfg = TransportConfig {
            connect_retries: 10,
            backoff_base: Duration::from_millis(20),
            chunk_len: 4,
            ..TransportConfig::default()
        };
        let mut sink = TcpChunkSink::new(addr.to_string(), 1, cfg);
        sink.send_chunk(vec![vec![Complex64::new(1.0, 2.0); 4]])
            .unwrap();
        assert!(server.join().unwrap());
        assert_eq!(sink.stats().chunks_sent(), 1);
    }
}
