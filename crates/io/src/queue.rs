//! Bounded MPMC queue with explicit overflow policy and always-on drop
//! accounting.
//!
//! The network source blocks put a reader thread on one side of this
//! queue and the flowgraph scheduler on the other. Capacity is the
//! backpressure knob: [`OverflowPolicy::Block`] propagates pressure to
//! the producer, the two `Drop*` policies shed load (the right call for
//! live sample streams, where stale IQ is worthless) while counting
//! every shed item.
//!
//! Drop counts are plain atomics rather than telemetry [`mimonet_runtime::Counter`]s
//! on purpose: dropping is *semantics* (it changes what the receiver
//! decodes), so the accounting must survive `telemetry-off` builds. The
//! transport blocks mirror the count into
//! `BlockTelemetry::queue_drops` so `fig_profile` sees it too.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What `push` does when the queue is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Wait for space — backpressure the producer.
    Block,
    /// Reject the incoming item.
    DropNewest,
    /// Evict the oldest queued item to make room — live streams keep the
    /// freshest samples.
    DropOldest,
}

/// Outcome of a [`BoundedQueue::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// The item was enqueued without loss.
    Accepted,
    /// The queue was full and closed to the incoming item.
    DroppedNewest,
    /// The oldest queued item was evicted for this one.
    DroppedOldest,
    /// The queue is closed; the item was discarded.
    Closed,
}

#[derive(Default)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Cumulative queue statistics (always on; see module docs).
#[derive(Debug, Default)]
pub struct QueueStats {
    pushed: AtomicU64,
    popped: AtomicU64,
    dropped: AtomicU64,
    highwater: AtomicU64,
}

impl QueueStats {
    /// Items accepted into the queue.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }
    /// Items taken out of the queue.
    pub fn popped(&self) -> u64 {
        self.popped.load(Ordering::Relaxed)
    }
    /// Items lost to overflow (either drop policy).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
    /// Highest occupancy ever observed.
    pub fn highwater(&self) -> u64 {
        self.highwater.load(Ordering::Relaxed)
    }
}

/// The bounded queue. Clone-free: share it through an `Arc`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: OverflowPolicy,
    stats: QueueStats,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "queue capacity must be nonzero");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            policy,
            stats: QueueStats::default(),
        }
    }

    /// Capacity in items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues an item per the overflow policy.
    pub fn push(&self, item: T) -> PushOutcome {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return PushOutcome::Closed;
        }
        let mut outcome = PushOutcome::Accepted;
        if g.items.len() >= self.capacity {
            match self.policy {
                OverflowPolicy::Block => {
                    while g.items.len() >= self.capacity && !g.closed {
                        g = self.not_full.wait(g).unwrap();
                    }
                    if g.closed {
                        return PushOutcome::Closed;
                    }
                }
                OverflowPolicy::DropNewest => {
                    self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    return PushOutcome::DroppedNewest;
                }
                OverflowPolicy::DropOldest => {
                    g.items.pop_front();
                    self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    outcome = PushOutcome::DroppedOldest;
                }
            }
        }
        g.items.push_back(item);
        self.stats.pushed.fetch_add(1, Ordering::Relaxed);
        self.stats
            .highwater
            .fetch_max(g.items.len() as u64, Ordering::Relaxed);
        drop(g);
        self.not_empty.notify_one();
        outcome
    }

    /// Dequeues without waiting.
    pub fn try_pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        let item = g.items.pop_front();
        if item.is_some() {
            self.stats.popped.fetch_add(1, Ordering::Relaxed);
            drop(g);
            self.not_full.notify_one();
        }
        item
    }

    /// Dequeues, waiting up to `timeout` for an item. `None` on timeout
    /// or when the queue is closed and drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        if g.items.is_empty() && !g.closed {
            let (guard, _) = self.not_empty.wait_timeout(g, timeout).unwrap();
            g = guard;
        }
        let item = g.items.pop_front();
        if item.is_some() {
            self.stats.popped.fetch_add(1, Ordering::Relaxed);
            drop(g);
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: pending items stay poppable, new pushes are
    /// refused, and all waiters wake.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// `true` once closed (items may still be queued).
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// `true` when closed and fully drained — the consumer's end-of-stream.
    pub fn is_terminated(&self) -> bool {
        let g = self.inner.lock().unwrap();
        g.closed && g.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_stats() {
        let q = BoundedQueue::new(4, OverflowPolicy::DropNewest);
        for i in 0..3 {
            assert_eq!(q.push(i), PushOutcome::Accepted);
        }
        assert_eq!(q.try_pop(), Some(0));
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.stats().pushed(), 3);
        assert_eq!(q.stats().popped(), 2);
        assert_eq!(q.stats().highwater(), 3);
        assert_eq!(q.stats().dropped(), 0);
    }

    #[test]
    fn drop_newest_sheds_the_incoming_item() {
        let q = BoundedQueue::new(2, OverflowPolicy::DropNewest);
        q.push(1);
        q.push(2);
        assert_eq!(q.push(3), PushOutcome::DroppedNewest);
        assert_eq!(q.stats().dropped(), 1);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest() {
        let q = BoundedQueue::new(2, OverflowPolicy::DropOldest);
        q.push(1);
        q.push(2);
        assert_eq!(q.push(3), PushOutcome::DroppedOldest);
        assert_eq!(q.stats().dropped(), 1);
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
    }

    #[test]
    fn block_policy_backpressures_until_space() {
        let q = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        q.push(0);
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.try_pop(), Some(0));
        assert_eq!(t.join().unwrap(), PushOutcome::Accepted);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.stats().dropped(), 0);
    }

    #[test]
    fn close_wakes_consumers_and_refuses_producers() {
        let q = Arc::new(BoundedQueue::<u32>::new(2, OverflowPolicy::Block));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None);
        assert_eq!(q.push(9), PushOutcome::Closed);
        assert!(q.is_terminated());
    }

    #[test]
    fn close_drains_remaining_items_first() {
        let q = BoundedQueue::new(4, OverflowPolicy::Block);
        q.push(1);
        q.close();
        assert!(!q.is_terminated());
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert!(q.is_terminated());
    }
}
