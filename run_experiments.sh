#!/bin/bash
# Regenerates every figure/table of EXPERIMENTS.md into results/.
#
#   ./run_experiments.sh                  # full scale (paper-quality counts)
#   ./run_experiments.sh --quick          # ~10x fewer trials, minutes not hours
#   ./run_experiments.sh --thorough       # 3x the full-scale counts
#   ./run_experiments.sh --quick --threads 4   # pin the sweep worker count
#
# Each binary writes its stdout table to results/<bin>.txt and a
# structured JSON series to results/<bin>.json (schema in EXPERIMENTS.md).
# Per-figure wall-clock goes to results/BENCH_sweeps.json.
set -u
cd "$(dirname "$0")"
BINS="fig_sync_metric fig_sync_timing fig_sync_cfo fig_chanest fig_snr_est fig_ber_siso fig_ber_mimo fig_per fig_throughput table_mcs table_fec_gain fig_ablation_pilots fig_ablation_finetiming fig_ablation_soft fig_stbc_vs_sm fig_doppler fig_chaos fig_capacity fig_profile bench_hotpath bench_io"
mkdir -p results
cargo build -q --release -p mimonet-bench

SWEEPS="results/BENCH_sweeps.json"
{
  echo "{"
  echo "  \"args\": \"$*\","
  echo "  \"figures\": {"
} > "$SWEEPS"
first=1
total_start=$(date +%s.%N)
for b in $BINS; do
  echo "=== $b ==="
  start=$(date +%s.%N)
  cargo run -q --release -p mimonet-bench --bin "$b" -- "$@" > "results/$b.txt" 2>&1
  status=$?
  end=$(date +%s.%N)
  wall=$(echo "$end $start" | awk '{printf "%.3f", $1 - $2}')
  [ $first -eq 0 ] && echo "," >> "$SWEEPS"
  first=0
  printf '    "%s": {"wall_s": %s, "status": %d}' "$b" "$wall" "$status" >> "$SWEEPS"
done
total_end=$(date +%s.%N)

# Multi-core speedup probe: one figure, 1 worker vs one-per-core.
echo "=== speedup probe (fig_per) ==="
NPROC=$(nproc)
s1_start=$(date +%s.%N)
cargo run -q --release -p mimonet-bench --bin fig_per -- "$@" --threads 1 > /dev/null 2>&1
s1_end=$(date +%s.%N)
sn_start=$(date +%s.%N)
cargo run -q --release -p mimonet-bench --bin fig_per -- "$@" --threads "$NPROC" > /dev/null 2>&1
sn_end=$(date +%s.%N)
wall1=$(echo "$s1_end $s1_start" | awk '{printf "%.3f", $1 - $2}')
walln=$(echo "$sn_end $sn_start" | awk '{printf "%.3f", $1 - $2}')
speedup=$(echo "$wall1 $walln" | awk '{printf "%.2f", $1 / ($2 > 0 ? $2 : 1)}')
echo "fig_per: ${wall1}s @ 1 thread, ${walln}s @ $NPROC threads (${speedup}x)"

{
  echo ""
  echo "  },"
  echo "  \"speedup\": {\"figure\": \"fig_per\", \"host_cpus\": $NPROC, \"threads\": $NPROC,"
  echo "              \"wall_s_1_thread\": $wall1, \"wall_s_n_threads\": $walln,"
  echo "              \"speedup\": $speedup},"
  echo "$total_end $total_start" | awk '{printf "  \"total_wall_s\": %.3f\n", $1 - $2}'
  echo "}"
} >> "$SWEEPS"
echo "done (timings in $SWEEPS)"
