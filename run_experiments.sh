#!/bin/bash
# Regenerates every figure/table of EXPERIMENTS.md into results/.
#
#   ./run_experiments.sh            # full scale (paper-quality counts)
#   ./run_experiments.sh --quick    # ~10x fewer trials, minutes not hours
#   ./run_experiments.sh --thorough # 3x the full-scale counts
set -u
cd "$(dirname "$0")"
BINS="fig_sync_metric fig_sync_timing fig_sync_cfo fig_chanest fig_snr_est fig_ber_siso fig_ber_mimo fig_per fig_throughput table_mcs table_fec_gain fig_ablation_pilots fig_ablation_finetiming fig_ablation_soft fig_stbc_vs_sm fig_doppler"
mkdir -p results
for b in $BINS; do
  echo "=== $b ==="
  cargo run -q --release -p mimonet-bench --bin "$b" -- "${1:-}" > "results/$b.txt" 2>&1
done
echo done
