//! File transfer over a fading MIMO link with stop-and-wait ARQ.
//!
//! Splits a pseudo-file into MPDUs, runs each over a TGn-C 2×2 channel at
//! moderate SNR, retransmits on FCS failure (up to a retry limit), and
//! reports delivery statistics — a miniature of the "network-level
//! exploitation" MIMONet was built for.
//!
//! ```sh
//! cargo run --release --example file_transfer [snr_db]
//! ```

// Index-based loops here are the clearer expression of the math
// (matrix/carrier indexing); silence the iterator-style suggestion.
#![allow(clippy::needless_range_loop)]
use mimonet::{Receiver, RxConfig, Transmitter, TxConfig};
use mimonet_channel::{ChannelConfig, ChannelSim, Fading, TgnModel};
use mimonet_dsp::complex::Complex64;
use mimonet_frame::psdu::Mpdu;

const CHUNK: usize = 400;
const MAX_RETRIES: usize = 4;

fn main() {
    let snr_db: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(22.0);

    // A deterministic pseudo-file.
    let file: Vec<u8> = (0..20_000usize).map(|i| (i * 131 % 251) as u8).collect();
    let chunks: Vec<&[u8]> = file.chunks(CHUNK).collect();

    let tx = Transmitter::new(TxConfig::new(10).expect("valid MCS")); // 2x2 QPSK 3/4
    let rx = Receiver::new(RxConfig::new(2));
    let mut chan_cfg = ChannelConfig::awgn(2, 2, snr_db);
    chan_cfg.fading = Fading::Tgn(TgnModel::C);
    chan_cfg.cfo_norm = 0.13;
    let mut chan = ChannelSim::new(chan_cfg, 7);

    println!(
        "Transferring {} bytes in {} chunks over TGn-C 2x2 at {snr_db} dB ({})",
        file.len(),
        chunks.len(),
        tx.mcs()
    );

    let mut received = Vec::with_capacity(file.len());
    let mut tx_count = 0usize;
    let mut retry_histogram = [0usize; MAX_RETRIES + 1];
    let mut failed_chunks = 0usize;

    for (seq, chunk) in chunks.iter().enumerate() {
        let mpdu = Mpdu::data([0x02; 6], [0x04; 6], seq as u16, chunk.to_vec());
        let psdu = mpdu.to_psdu();
        let mut delivered = false;
        for attempt in 0..=MAX_RETRIES {
            tx_count += 1;
            let mut streams = tx.transmit(&psdu).expect("valid PSDU");
            for s in &mut streams {
                let mut p = vec![Complex64::ZERO; 180];
                p.extend_from_slice(s);
                p.extend(vec![Complex64::ZERO; 100]);
                *s = p;
            }
            // Each (re)transmission sees a fresh block-fading realization.
            let (rx_streams, _) = chan.apply(&streams);
            if let Ok(frame) = rx.receive(&rx_streams) {
                if let Some(got) = Mpdu::from_psdu(&frame.psdu) {
                    if got.header.seq == (seq as u16 & 0x0FFF) {
                        received.extend_from_slice(&got.payload);
                        retry_histogram[attempt] += 1;
                        delivered = true;
                        break;
                    }
                }
            }
        }
        if !delivered {
            failed_chunks += 1;
            received.extend(std::iter::repeat_n(0u8, chunk.len()));
        }
    }

    let intact = received.iter().zip(&file).filter(|(a, b)| a == b).count();
    println!("\nDelivered {intact}/{} bytes intact", file.len());
    println!(
        "{} transmissions for {} chunks ({:.2} tx/chunk); {} chunks abandoned",
        tx_count,
        chunks.len(),
        tx_count as f64 / chunks.len() as f64,
        failed_chunks
    );
    print!("Retry histogram (attempt -> chunks): ");
    for (i, &n) in retry_histogram.iter().enumerate() {
        if n > 0 {
            print!("{i}:{n} ");
        }
    }
    println!();
    if failed_chunks == 0 && intact == file.len() {
        println!("File transfer complete and verified.");
    }
}
