//! The transceiver as a flowgraph — the GNU Radio programming model the
//! paper targets, on MIMONet-rs's own runtime.
//!
//! Builds `source → TX → channel → RX → sink`, runs it on both the
//! single-threaded and the thread-per-block scheduler, and listens to the
//! receiver's out-of-band messages (decoded frames, per-frame SNR).
//!
//! ```sh
//! cargo run --release --example flowgraph
//! ```

use mimonet::blocks::build_link_flowgraph;
use mimonet::{RxConfig, TxConfig};
use mimonet_channel::ChannelConfig;
use mimonet_runtime::{Message, MessageHub};

fn main() {
    let psdu_len = 120;
    let n_frames = 8;
    let psdus: Vec<u8> = (0..n_frames * psdu_len).map(|i| (i % 256) as u8).collect();

    // --- single-threaded scheduler ---
    let (mut fg, sink, _ids) = build_link_flowgraph(
        TxConfig::new(11).expect("valid MCS"),
        ChannelConfig::awgn(2, 2, 24.0),
        RxConfig::new(2),
        &psdus,
        psdu_len,
        1234,
    );
    let hub = MessageHub::new();
    let frames = hub.subscribe("mimonet.frames");
    let snrs = hub.subscribe("mimonet.snr");
    fg.run(&hub).expect("flowgraph");

    let decoded = sink.bytes();
    println!(
        "single-threaded: {}/{} PSDUs decoded ({} bytes)",
        decoded.len() / psdu_len,
        n_frames,
        decoded.len()
    );
    for (i, m) in snrs.drain().iter().enumerate() {
        if let Message::F64(db) = m {
            println!("  frame {i}: SNR estimate {db:.1} dB");
        }
    }
    println!(
        "  message port delivered {} frame announcements",
        frames.drain().len()
    );

    // --- thread-per-block scheduler, same graph ---
    let (fg2, sink2, _) = build_link_flowgraph(
        TxConfig::new(11).expect("valid MCS"),
        ChannelConfig::awgn(2, 2, 24.0),
        RxConfig::new(2),
        &psdus,
        psdu_len,
        1234,
    );
    let hub2 = std::sync::Arc::new(MessageHub::new());
    fg2.run_threaded(hub2).expect("flowgraph");
    println!(
        "thread-per-block: {}/{} PSDUs decoded, identical: {}",
        sink2.bytes().len() / psdu_len,
        n_frames,
        sink2.bytes() == decoded
    );
}
