//! Quickstart: transmit one MIMO frame over a simulated noisy channel and
//! decode it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mimonet::{Receiver, RxConfig, Transmitter, TxConfig};
use mimonet_channel::{ChannelConfig, ChannelSim};
use mimonet_dsp::complex::Complex64;
use mimonet_frame::psdu::Mpdu;

fn main() {
    // 1. A MAC frame: 2-stream spatial multiplexing, QPSK, rate 1/2
    //    (MCS 9 ≈ 26 Mb/s).
    let payload = b"Hello from MIMONet-rs: two streams, one channel.".to_vec();
    let mpdu = Mpdu::data([0x02; 6], [0x04; 6], 1, payload);
    let psdu = mpdu.to_psdu();

    // 2. Transmit: PSDU -> per-antenna baseband sample streams.
    let tx = Transmitter::new(TxConfig::new(9).expect("valid MCS"));
    let mut streams = tx.transmit(&psdu).expect("valid PSDU");
    println!(
        "TX: {} ({} bytes PSDU -> {} samples/antenna on {} antennas)",
        tx.mcs(),
        psdu.len(),
        streams[0].len(),
        streams.len()
    );

    // 3. The air: 20 dB SNR, 0.2-subcarrier CFO, 10 ppm clock error and a
    //    timing offset — everything a pair of USRPs would add.
    for s in &mut streams {
        let mut padded = vec![Complex64::ZERO; 200];
        padded.extend_from_slice(s);
        padded.extend(vec![Complex64::ZERO; 100]);
        *s = padded;
    }
    let mut chan_cfg = ChannelConfig::awgn(2, 2, 20.0);
    chan_cfg.cfo_norm = 0.2;
    chan_cfg.sfo_ppm = 10.0;
    chan_cfg.timing_offset = 17.0;
    let mut chan = ChannelSim::new(chan_cfg, 0xC0FFEE);
    let (rx_streams, _truth) = chan.apply(&streams);

    // 4. Receive: detect, synchronize, estimate, detect streams, decode.
    let rx = Receiver::new(RxConfig::new(2));
    match rx.receive(&rx_streams) {
        Ok(frame) => {
            println!(
                "RX: MCS{} | preamble SNR {:.1} dB | EVM SNR {:.1} dB | CFO {:.3} spacings",
                frame.mcs,
                frame.snr_db,
                frame.evm_snr_db.unwrap_or(f64::NAN),
                frame.cfo
            );
            match Mpdu::from_psdu(&frame.psdu) {
                Some(got) => println!(
                    "FCS OK, payload: {:?}",
                    String::from_utf8_lossy(&got.payload)
                ),
                None => println!("decoded, but FCS failed"),
            }
        }
        Err(e) => println!("RX failed: {e}"),
    }
}
