//! SISO vs spatial multiplexing: the paper's headline trade.
//!
//! Sweeps SNR for a 1-stream and a 2-stream MCS carrying the *same*
//! modulation and code rate (16-QAM, r = 1/2), and prints PER and goodput
//! side by side: spatial multiplexing doubles throughput where the SNR
//! supports it, and gives it back below the waterfall.
//!
//! ```sh
//! cargo run --release --example siso_vs_mimo
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_channel::{ChannelConfig, Fading};

const PAYLOAD: usize = 700;
const FRAMES: usize = 60;

fn run(mcs: u8, n_ant: usize, snr_db: f64, seed: u64) -> (f64, f64) {
    let mut chan = ChannelConfig::awgn(n_ant, n_ant, snr_db);
    chan.fading = Fading::RayleighFlat;
    let cfg = LinkConfig::new(mcs, PAYLOAD, chan);
    let mut sim = LinkSim::new(cfg, seed);
    let airtime = sim.frame_airtime_us();
    let stats = sim.run(FRAMES);
    (stats.per.per(), stats.per.goodput_mbps(PAYLOAD, airtime))
}

fn main() {
    println!("SISO (MCS3, 16-QAM 1/2, 26 Mb/s) vs 2x2 SM (MCS11, 16-QAM 1/2, 52 Mb/s)");
    println!("Rayleigh block fading, {PAYLOAD}-byte payloads, {FRAMES} frames/point\n");
    println!(
        "{:>7} | {:>9} {:>13} | {:>9} {:>13}",
        "SNR dB", "SISO PER", "SISO Mb/s", "MIMO PER", "MIMO Mb/s"
    );
    println!("{}", "-".repeat(62));
    for snr in [8, 12, 16, 20, 24, 28, 32] {
        let (per1, tput1) = run(3, 1, snr as f64, 42 + snr as u64);
        let (per2, tput2) = run(11, 2, snr as f64, 142 + snr as u64);
        println!("{snr:>7} | {per1:>9.3} {tput1:>13.1} | {per2:>9.3} {tput2:>13.1}");
    }
    println!("\nRead: MIMO needs ~4-6 dB more SNR for the same PER, then");
    println!("delivers ~2x the goodput — the spatial-multiplexing trade.");
}
