//! Record a 2x2 MIMO-OFDM link to a `.iqcap` capture file, then replay
//! it offline through `Receiver::scan` and check the replay is exact:
//! same frames, same PSDUs, identical `LinkStats`.
//!
//! ```sh
//! cargo run --release --example record_replay
//! ```

use mimonet::config::RxConfig;
use mimonet::rx::Receiver;
use mimonet_io::capture::{replay_scan, write_capture, CAPTURE_SAMPLE_RATE_HZ};
use mimonet_io::session::{build_link_capture, score_scan};
use mimonet_io::wire::{CaptureMeta, SessionConfig};
use serde::Serialize;

fn main() {
    // A 4-frame 2x2 session at 28 dB: MCS 9 is QPSK 1/2 on two streams.
    let cfg = SessionConfig {
        mcs: 9,
        payload_len: 200,
        n_frames: 4,
        snr_db: 28.0,
        seed: 2026,
    };

    // --- Record: run the link "over the air" and capture what a 2-antenna
    // recorder at the receiver would have seen.
    let (streams, psdus) = build_link_capture(&cfg).expect("valid session config");
    let n_ant = streams.len();
    let path = std::env::temp_dir().join("mimonet_record_replay_2x2.iqcap");
    let meta = CaptureMeta {
        n_ant: n_ant as u16,
        sample_rate_hz: CAPTURE_SAMPLE_RATE_HZ,
        seed: cfg.seed,
        description: format!(
            "2x2 link, MCS {}, {} frames x {} B, {} dB AWGN",
            cfg.mcs, cfg.n_frames, cfg.payload_len, cfg.snr_db
        ),
    };
    write_capture(&path, &meta, &streams).expect("write capture");
    let bytes = std::fs::metadata(&path).expect("capture on disk").len();
    println!(
        "recorded {} frames over {} antennas ({} samples/antenna, {bytes} B) -> {}",
        cfg.n_frames,
        n_ant,
        streams[0].len(),
        path.display()
    );

    // --- Live decode: scan the in-memory streams directly.
    let rx = Receiver::new(RxConfig::new(n_ant));
    let (live_frames, live_scan) = rx.scan(&streams);
    let live_stats = score_scan(&psdus, &live_frames, &live_scan);

    // --- Replay: read the file back and scan again, offline.
    let (m, replay_frames, replay_scan_stats) =
        replay_scan(&path, RxConfig::new(n_ant)).expect("replay capture");
    let replay_stats = score_scan(&psdus, &replay_frames, &replay_scan_stats);
    println!(
        "replayed \"{}\": {} frames decoded",
        m.description,
        replay_frames.len()
    );

    // --- The whole point: the replay is *exact*.
    assert_eq!(
        live_frames.len(),
        replay_frames.len(),
        "frame count differs"
    );
    for ((off_a, fa), (off_b, fb)) in live_frames.iter().zip(&replay_frames) {
        assert_eq!(off_a, off_b, "detection offset differs");
        assert_eq!(fa.psdu, fb.psdu, "PSDU differs");
    }
    let live_json = serde::json::to_string(&live_stats.serialize());
    let replay_json = serde::json::to_string(&replay_stats.serialize());
    assert_eq!(live_json, replay_json, "LinkStats differ");
    println!(
        "live scan and file replay agree bit-for-bit: {}/{} frames ok, PER {:.3}",
        live_stats.per.ok(),
        live_stats.per.sent(),
        live_stats.per.per()
    );

    std::fs::remove_file(&path).ok();
}
