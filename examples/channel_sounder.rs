//! Channel sounder: use the 802.11n preamble as a probe to measure a
//! frequency-selective MIMO channel, then compare the estimate against
//! the simulator's ground truth.
//!
//! Prints per-subcarrier |H| for each antenna pair as ASCII sparklines,
//! plus the estimation MSE and preamble SNR — the measurement side of the
//! paper's "evaluate the channel conditions".
//!
//! ```sh
//! cargo run --release --example channel_sounder [tgn_model: A|B|C|D|E]
//! ```

use mimonet::{Transmitter, TxConfig};
use mimonet_channel::{ChannelConfig, ChannelSim, Fading, TgnModel};
use mimonet_detect::estimate_mimo_htltf;
use mimonet_dsp::complex::Complex64;
use mimonet_frame::carriers::FFT_LEN;
use mimonet_frame::ofdm::Ofdm;

fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    values
        .iter()
        .map(|&v| GLYPHS[((v / max * 7.0).round() as usize).min(7)])
        .collect()
}

fn main() {
    let model = match std::env::args().nth(1).as_deref() {
        Some("A") => TgnModel::A,
        Some("B") => TgnModel::B,
        Some("D") => TgnModel::D,
        Some("E") => TgnModel::E,
        _ => TgnModel::C,
    };
    println!("Sounding a {model} 2x2 channel at 25 dB SNR\n");

    // Transmit any 2-stream frame; only the preamble matters here.
    let tx = Transmitter::new(TxConfig::new(8).expect("valid MCS"));
    let streams = tx.transmit(&[0u8; 30]).expect("valid PSDU");

    let mut chan_cfg = ChannelConfig::awgn(2, 2, 25.0);
    chan_cfg.fading = Fading::Tgn(model);
    let mut chan = ChannelSim::new(chan_cfg, 99);
    let (rx, truth) = chan.apply(&streams);
    let tdl = truth.tdl.expect("TGn fading");

    // The frame layout is known here (no timing offset), so demodulate the
    // two HT-LTF symbols directly: they start after
    // L-STF + L-LTF + L-SIG + 2×HT-SIG + HT-STF = 640 samples.
    let ofdm = Ofdm::new();
    let scale = Ofdm::unit_power_scale(56);
    let htltf_start = 160 + 160 + 80 + 160 + 80;
    let mut ltf_bins = Vec::new();
    for i in 0..2 {
        let base = htltf_start + i * 80;
        let per_rx: Vec<[Complex64; FFT_LEN]> = rx
            .iter()
            .map(|b| ofdm.demodulate(&b[base..base + 80], scale))
            .collect();
        ltf_bins.push(per_rx);
    }
    let est = estimate_mimo_htltf(&ltf_bins, 2);

    // Ground truth per (rx, tx): the TDL frequency response times the
    // transmit chain's per-antenna scale and HT cyclic shift.
    let ant_scale = 1.0 / 2f64.sqrt();
    let truth_at = |k: i32, r: usize, s: usize| -> Complex64 {
        let shift = mimonet_frame::ofdm::ht_cyclic_shift(s, 2);
        let csd =
            Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 * shift as f64 / FFT_LEN as f64);
        tdl.freq_response(r, s, k, FFT_LEN) * csd * ant_scale
    };

    for r in 0..2 {
        for s in 0..2 {
            let mags: Vec<f64> = est
                .carriers()
                .iter()
                .map(|&k| est.at(k).unwrap()[(r, s)].abs())
                .collect();
            println!("|H[rx{r}][tx{s}]| across carriers: {}", sparkline(&mags));
        }
    }

    let mse = est.mse_against(truth_at);
    let mean_gain: f64 = est
        .carriers()
        .iter()
        .map(|&k| {
            let m = est.at(k).unwrap();
            (0..2)
                .flat_map(|r| (0..2).map(move |s| m[(r, s)].norm_sqr()))
                .sum::<f64>()
        })
        .sum::<f64>()
        / est.carriers().len() as f64;
    println!("\nchannel estimate: 56 carriers x 2x2");
    println!("mean |H|^2 (sum over pairs): {mean_gain:.3}");
    println!(
        "estimation MSE vs ground truth: {:.2e} ({:.1} dB below mean gain)",
        mse,
        10.0 * (mean_gain / 4.0 / mse).log10()
    );
    println!(
        "channel delay spread: {} taps ({} ns)",
        tdl.max_delay(),
        (tdl.max_delay() - 1) * 50
    );
}
