//! Closed-loop link adaptation over a slowly changing channel.
//!
//! An SNR trajectory (good → deep fade → recovery) drives real frame
//! exchanges; the rate controller climbs, crashes down through the fade,
//! and climbs back — printing the MCS trace and the goodput an adaptive
//! link achieves vs. fixed-rate alternatives.
//!
//! ```sh
//! cargo run --release --example adaptive_link
//! ```

use mimonet::adapt::{RateController, SnrThresholdTable};
use mimonet::link::{LinkConfig, LinkSim};
use mimonet_channel::ChannelConfig;
use mimonet_frame::mcs::Mcs;

const PAYLOAD: usize = 800;
const FRAMES_PER_STEP: usize = 4;

/// SNR trajectory in dB: plateau, fade, recovery.
fn snr_at(step: usize) -> f64 {
    match step {
        0..=7 => 30.0,
        8..=11 => 30.0 - 5.0 * (step - 7) as f64, // slide into the fade
        12..=21 => 10.0,                          // long deep fade
        22..=25 => 10.0 + 5.0 * (step - 21) as f64, // climb out
        _ => 30.0,
    }
}

fn run_fixed(mcs: u8, steps: usize) -> (u64, u64) {
    let mut ok = 0;
    let mut sent = 0;
    for step in 0..steps {
        let cfg = LinkConfig::new(mcs, PAYLOAD, ChannelConfig::awgn(2, 2, snr_at(step)));
        let stats = LinkSim::new(cfg, 77_000 + step as u64).run(FRAMES_PER_STEP);
        ok += stats.per.ok();
        sent += stats.per.sent();
    }
    (ok, sent)
}

fn main() {
    let steps = 30;
    println!("Adaptive 2x2 link over an SNR trajectory (30 dB -> 12 dB fade -> 30 dB)");
    println!("payload {PAYLOAD} B, {FRAMES_PER_STEP} frames per step\n");

    let mut rc = RateController::new(SnrThresholdTable::default_two_stream());
    let mut delivered_bits = 0u64;
    let mut airtime_us = 0.0f64;
    let mut ok_total = 0u64;
    let mut sent_total = 0u64;
    println!(
        "{:>5} {:>8} {:>6} {:>10} {:>10}",
        "step", "SNR dB", "MCS", "ok/sent", "est dB"
    );
    for step in 0..steps {
        let mcs = rc.current_mcs();
        let cfg = LinkConfig::new(mcs, PAYLOAD, ChannelConfig::awgn(2, 2, snr_at(step)));
        let mut sim = LinkSim::new(cfg, 42_000 + step as u64);
        airtime_us += sim.frame_airtime_us() * FRAMES_PER_STEP as f64;
        let stats = sim.run(FRAMES_PER_STEP);
        delivered_bits += stats.per.ok() * PAYLOAD as u64 * 8;
        ok_total += stats.per.ok();
        sent_total += stats.per.sent();
        let est = if stats.snr_est_db.count() > 0 {
            stats.snr_est_db.mean()
        } else {
            f64::NAN
        };
        println!(
            "{:>5} {:>8.1} {:>6} {:>7}/{:<2} {:>10.1}",
            step,
            snr_at(step),
            mcs,
            stats.per.ok(),
            stats.per.sent(),
            est
        );
        rc.update(
            stats.per.ok() == stats.per.sent(),
            if est.is_nan() { None } else { Some(est) },
        );
    }
    let adaptive_goodput = delivered_bits as f64 / airtime_us;
    println!("\nadaptive: {ok_total}/{sent_total} delivered, {adaptive_goodput:.1} Mb/s goodput");

    for mcs in [8u8, 11, 15] {
        let (ok, sent) = run_fixed(mcs, steps);
        let airtime = {
            let cfg = LinkConfig::new(mcs, PAYLOAD, ChannelConfig::awgn(2, 2, 30.0));
            LinkSim::new(cfg, 0).frame_airtime_us() * sent as f64
        };
        let goodput = ok as f64 * PAYLOAD as f64 * 8.0 / airtime;
        println!(
            "fixed {}: {ok}/{sent} delivered, {goodput:.1} Mb/s",
            Mcs::from_index(mcs).unwrap()
        );
    }
    println!("\nRead: per unit airtime, fixed-high posts the biggest goodput number —");
    println!("failed frames are cheap in airtime — but it drops half the traffic");
    println!("through the fade, which loss-sensitive flows cannot absorb. Adaptation");
    println!("delivers (nearly) everything, at ~2x the goodput of always-robust.");
}
