//! The sweep engine's core contract: results are byte-identical for any
//! worker-thread count. Checked three ways — serialized `LinkStats` from
//! full link sweeps, a structural proptest over random spec shapes with a
//! cheap synthetic accumulator, and a (small) randomized link-sweep
//! proptest. A fourth section probes the `Merge` algebra directly:
//! every accumulator the engine folds (recovery counters, chaos stats,
//! telemetry snapshots) must merge associatively with `Default` as the
//! identity, or shard regrouping would change the bytes.

use mimonet::chaos::{run_chaos, run_chaos_capture, ChaosConfig};
use mimonet::link::{LinkConfig, LinkStats};
use mimonet::sweep::{run_link, run_link_until_errors, Merge, SweepSpec};
use mimonet::{FrameOutcomes, RecoveryCounter, StageProfile};
use mimonet_channel::{ChannelConfig, Fading, FaultSpec};
use mimonet_dsp::stats::Running;
use mimonet_runtime::GraphTelemetry;
use proptest::prelude::*;
use serde::{json, Serialize};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn link_points(snrs: &[f64]) -> Vec<LinkConfig> {
    snrs.iter()
        .map(|&snr| {
            let mut chan = ChannelConfig::awgn(2, 2, snr);
            chan.fading = Fading::RayleighFlat;
            LinkConfig::new(8, 60, chan)
        })
        .collect()
}

/// Serializes every per-point statistic of a sweep result to JSON bytes.
fn stats_bytes<S: Serialize>(stats: &[S]) -> String {
    json::to_string(&stats.iter().map(|s| s.serialize()).collect::<Vec<_>>())
}

#[test]
fn link_sweep_serialized_stats_identical_across_thread_counts() {
    let run = |threads: usize| {
        let spec = SweepSpec::new("det", link_points(&[6.0, 12.0, 24.0]), 24)
            .seed(0x00D5_EED0)
            .shard_size(5)
            .threads(threads);
        stats_bytes(&run_link(&spec).stats)
    };
    let reference = run(THREAD_COUNTS[0]);
    assert!(
        reference.contains("payload_ber"),
        "sanity: stats serialized"
    );
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            run(threads),
            reference,
            "thread count {threads} changed the bytes"
        );
    }
}

#[test]
fn chaos_fault_schedule_sweep_identical_across_thread_counts() {
    // Fault schedules, scan re-syncs, and recovery accounting must all be
    // pure functions of (config, seed): a chaos sweep's serialized stats —
    // including the `recovery` block — may not change with the worker
    // thread count.
    let points: Vec<ChaosConfig> = [22.0, 30.0]
        .iter()
        .map(|&snr| {
            ChaosConfig::new(
                8,
                3,
                ChannelConfig::awgn(2, 2, snr),
                FaultSpec::harsh_mid_capture(),
            )
        })
        .collect();
    let run = |threads: usize| {
        let spec = SweepSpec::new("det_chaos", points.clone(), 4)
            .seed(0xFA_0175)
            .shard_size(2)
            .threads(threads);
        stats_bytes(&run_chaos(&spec).stats)
    };
    let reference = run(THREAD_COUNTS[0]);
    assert!(
        reference.contains("post_fault_recovery"),
        "sanity: recovery stats serialized"
    );
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            run(threads),
            reference,
            "thread count {threads} changed the chaos bytes"
        );
    }
}

#[test]
fn early_stopped_sweep_identical_across_thread_counts() {
    let run = |threads: usize| {
        let spec = SweepSpec::new("det_stop", link_points(&[2.0, 8.0]), 200)
            .seed(7)
            .shard_size(4)
            .threads(threads);
        let result = run_link_until_errors(&spec, 50);
        (stats_bytes(&result.stats), result.trials_run.clone())
    };
    let reference = run(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            run(threads),
            reference,
            "thread count {threads} changed the result"
        );
    }
}

proptest! {
    // Structural determinism over random spec shapes: a cheap synthetic
    // accumulator makes the fold order the only thing under test, so we
    // can afford many cases.
    #[test]
    fn random_specs_thread_invariant(
        n_points in 1usize..5,
        trials in 1usize..40,
        shard_size in 1usize..9,
        seed in any::<u64>(),
    ) {
        let points: Vec<u64> = (0..n_points as u64).collect();
        let run = |threads: usize| {
            let spec = SweepSpec::new("prop", points.clone(), trials)
                .seed(seed)
                .shard_size(shard_size)
                .threads(threads);
            let result = spec.run(|&p, ctx, acc: &mut Running| {
                // Deterministic pseudo-observations from the shard seed;
                // floating-point accumulation order is what we probe.
                let mut x = ctx.seed ^ p;
                for _ in 0..ctx.trials {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    acc.push((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
                }
            });
            stats_bytes(&result.stats)
        };
        let reference = run(1);
        prop_assert_eq!(run(2), reference.clone());
        prop_assert_eq!(run(8), reference);
    }

    // Randomized early stopping: the stop decision itself must also be
    // scheduling-independent.
    #[test]
    fn random_early_stop_thread_invariant(
        trials in 1usize..60,
        shard_size in 1usize..7,
        threshold in 1u64..40,
        seed in any::<u64>(),
    ) {
        let run = |threads: usize| {
            let spec = SweepSpec::new("prop_stop", vec![0u8, 1], trials)
                .seed(seed)
                .shard_size(shard_size)
                .threads(threads);
            let result = spec.run_until(
                |&p, ctx, acc: &mut u64| {
                    let mut x = ctx.seed ^ p as u64;
                    for _ in 0..ctx.trials {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                        *acc += (x >> 62 == 0) as u64;
                    }
                },
                move |acc: &u64| *acc >= threshold,
            );
            (result.stats.clone(), result.trials_run.clone())
        };
        let reference = run(1);
        prop_assert_eq!(run(2), reference.clone());
        prop_assert_eq!(run(8), reference);
    }
}

// --- Merge algebra: associativity + identity for every shard fold ---

/// Checks `((a·b)·c) == (a·(b·c))` and `default·a == a` for instances
/// produced by `gen`, compared through `ser` (the same serialized bytes
/// the determinism suite diffs).
fn check_merge_algebra<T: Merge>(gen: impl Fn(usize) -> T, ser: impl Fn(&T) -> String) {
    let mut left = gen(0);
    left.merge(&gen(1));
    left.merge(&gen(2));
    let mut bc = gen(1);
    bc.merge(&gen(2));
    let mut right = gen(0);
    right.merge(&bc);
    assert_eq!(ser(&left), ser(&right), "merge must be associative");

    let mut with_identity = T::default();
    with_identity.merge(&gen(0));
    assert_eq!(
        ser(&with_identity),
        ser(&gen(0)),
        "default must be the merge identity"
    );
}

#[test]
fn recovery_counter_merge_is_associative() {
    check_merge_algebra(
        |i| {
            let mut r = RecoveryCounter::default();
            r.record_events(3 + i as u64 * 7);
            r.record_rescans(i as u64);
            for k in 0..(5 + i * 3) {
                r.record_faulted(k % 2 == 0);
            }
            for k in 0..(4 + i) {
                r.record_post_fault(k % 3 != 0);
            }
            r
        },
        |r| json::to_string(&r.serialize()),
    );
}

#[test]
fn chaos_link_stats_merge_is_associative() {
    // Real chaos-capture accumulators (PER + BER + recovery + outcome
    // taxonomy), not synthetic ones: this is the exact type the chaos
    // sweep folds across shards.
    let cfg = ChaosConfig::new(
        8,
        3,
        ChannelConfig::awgn(2, 2, 26.0),
        FaultSpec::harsh_mid_capture(),
    );
    check_merge_algebra(
        |i| {
            let mut stats = LinkStats::default();
            run_chaos_capture(&cfg, 0xA55A ^ (i as u64 * 0x9E37_79B9), &mut stats);
            stats
        },
        |s| json::to_string(&s.serialize()),
    );
}

proptest! {
    #[test]
    fn frame_outcomes_merge_associative(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 6), 3),
    ) {
        let from = |v: &[u64]| FrameOutcomes {
            ok: v[0],
            sync_miss: v[1],
            header_fail: v[2],
            detector_fail: v[3],
            fec_fail: v[4],
            payload_fail: v[5],
        };
        let sets = [from(&counts[0]), from(&counts[1]), from(&counts[2])];
        let gen = |i: usize| sets[i];
        check_merge_algebra(gen, |o| json::to_string(&o.serialize()));
        // Totals are conserved: merged total == sum of part totals.
        let mut merged = FrameOutcomes::default();
        for s in &sets {
            merged.merge(s);
        }
        prop_assert_eq!(
            merged.total(),
            sets.iter().map(FrameOutcomes::total).sum::<u64>()
        );
    }

    #[test]
    fn stage_profile_merge_associative(
        calls in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, mimonet::STAGE_COUNT), 3),
        ns in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, mimonet::STAGE_COUNT), 3),
    ) {
        let gen = |i: usize| {
            let mut p = StageProfile::default();
            p.calls.copy_from_slice(&calls[i]);
            p.ns.copy_from_slice(&ns[i]);
            p
        };
        check_merge_algebra(gen, |p| json::to_string(&p.to_value(true)));
    }

    #[test]
    fn graph_snapshot_merge_associative(
        vals in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000, 4), 3),
    ) {
        // Snapshots taken from a real registry shape (two blocks, one
        // with an input port) so highwater-max and counter-add merge
        // paths are both exercised.
        let gen = |i: usize| {
            let tel = GraphTelemetry::new([("src".to_string(), 0), ("sink".to_string(), 1)]);
            let v = &vals[i];
            tel.blocks[0].work_calls.add(v[0]);
            tel.blocks[0].items_out.add(v[1]);
            tel.blocks[1].work_calls.add(v[2]);
            tel.blocks[1].items_in.add(v[1]);
            tel.blocks[1].input_highwater[0].record(v[3]);
            tel.blocks[1].work_ns_hist.record(v[3]);
            tel.snapshot()
        };
        check_merge_algebra(gen, |s| json::to_string(&s.to_value(true)));
        // The empty snapshot (a shard that never instrumented) adopts
        // the other side wholesale.
        let mut empty = mimonet_runtime::GraphSnapshot::default();
        empty.merge(&gen(0));
        prop_assert_eq!(empty, gen(0));
    }
}

proptest! {
    // Full-link randomized check: expensive per case, so only a handful,
    // but it exercises the real TX→channel→RX path end to end.
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn random_link_specs_thread_invariant(
        snr in 4.0f64..26.0,
        trials in 1usize..10,
        shard_size in 1usize..4,
        seed in any::<u64>(),
    ) {
        let run = |threads: usize| {
            let spec = SweepSpec::new("prop_link", link_points(&[snr]), trials)
                .seed(seed)
                .shard_size(shard_size)
                .threads(threads);
            stats_bytes(&run_link(&spec).stats)
        };
        let reference = run(1);
        prop_assert_eq!(run(2), reference.clone());
        prop_assert_eq!(run(8), reference);
    }
}
