//! The sweep engine's core contract: results are byte-identical for any
//! worker-thread count. Checked three ways — serialized `LinkStats` from
//! full link sweeps, a structural proptest over random spec shapes with a
//! cheap synthetic accumulator, and a (small) randomized link-sweep
//! proptest.

use mimonet::chaos::{run_chaos, ChaosConfig};
use mimonet::link::LinkConfig;
use mimonet::sweep::{run_link, run_link_until_errors, SweepSpec};
use mimonet_channel::{ChannelConfig, Fading, FaultSpec};
use mimonet_dsp::stats::Running;
use proptest::prelude::*;
use serde::{json, Serialize};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn link_points(snrs: &[f64]) -> Vec<LinkConfig> {
    snrs.iter()
        .map(|&snr| {
            let mut chan = ChannelConfig::awgn(2, 2, snr);
            chan.fading = Fading::RayleighFlat;
            LinkConfig::new(8, 60, chan)
        })
        .collect()
}

/// Serializes every per-point statistic of a sweep result to JSON bytes.
fn stats_bytes<S: Serialize>(stats: &[S]) -> String {
    json::to_string(&stats.iter().map(|s| s.serialize()).collect::<Vec<_>>())
}

#[test]
fn link_sweep_serialized_stats_identical_across_thread_counts() {
    let run = |threads: usize| {
        let spec = SweepSpec::new("det", link_points(&[6.0, 12.0, 24.0]), 24)
            .seed(0x00D5_EED0)
            .shard_size(5)
            .threads(threads);
        stats_bytes(&run_link(&spec).stats)
    };
    let reference = run(THREAD_COUNTS[0]);
    assert!(
        reference.contains("payload_ber"),
        "sanity: stats serialized"
    );
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            run(threads),
            reference,
            "thread count {threads} changed the bytes"
        );
    }
}

#[test]
fn chaos_fault_schedule_sweep_identical_across_thread_counts() {
    // Fault schedules, scan re-syncs, and recovery accounting must all be
    // pure functions of (config, seed): a chaos sweep's serialized stats —
    // including the `recovery` block — may not change with the worker
    // thread count.
    let points: Vec<ChaosConfig> = [22.0, 30.0]
        .iter()
        .map(|&snr| {
            ChaosConfig::new(
                8,
                3,
                ChannelConfig::awgn(2, 2, snr),
                FaultSpec::harsh_mid_capture(),
            )
        })
        .collect();
    let run = |threads: usize| {
        let spec = SweepSpec::new("det_chaos", points.clone(), 4)
            .seed(0xFA_0175)
            .shard_size(2)
            .threads(threads);
        stats_bytes(&run_chaos(&spec).stats)
    };
    let reference = run(THREAD_COUNTS[0]);
    assert!(
        reference.contains("post_fault_recovery"),
        "sanity: recovery stats serialized"
    );
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            run(threads),
            reference,
            "thread count {threads} changed the chaos bytes"
        );
    }
}

#[test]
fn early_stopped_sweep_identical_across_thread_counts() {
    let run = |threads: usize| {
        let spec = SweepSpec::new("det_stop", link_points(&[2.0, 8.0]), 200)
            .seed(7)
            .shard_size(4)
            .threads(threads);
        let result = run_link_until_errors(&spec, 50);
        (stats_bytes(&result.stats), result.trials_run.clone())
    };
    let reference = run(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            run(threads),
            reference,
            "thread count {threads} changed the result"
        );
    }
}

proptest! {
    // Structural determinism over random spec shapes: a cheap synthetic
    // accumulator makes the fold order the only thing under test, so we
    // can afford many cases.
    #[test]
    fn random_specs_thread_invariant(
        n_points in 1usize..5,
        trials in 1usize..40,
        shard_size in 1usize..9,
        seed in any::<u64>(),
    ) {
        let points: Vec<u64> = (0..n_points as u64).collect();
        let run = |threads: usize| {
            let spec = SweepSpec::new("prop", points.clone(), trials)
                .seed(seed)
                .shard_size(shard_size)
                .threads(threads);
            let result = spec.run(|&p, ctx, acc: &mut Running| {
                // Deterministic pseudo-observations from the shard seed;
                // floating-point accumulation order is what we probe.
                let mut x = ctx.seed ^ p;
                for _ in 0..ctx.trials {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    acc.push((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
                }
            });
            stats_bytes(&result.stats)
        };
        let reference = run(1);
        prop_assert_eq!(run(2), reference.clone());
        prop_assert_eq!(run(8), reference);
    }

    // Randomized early stopping: the stop decision itself must also be
    // scheduling-independent.
    #[test]
    fn random_early_stop_thread_invariant(
        trials in 1usize..60,
        shard_size in 1usize..7,
        threshold in 1u64..40,
        seed in any::<u64>(),
    ) {
        let run = |threads: usize| {
            let spec = SweepSpec::new("prop_stop", vec![0u8, 1], trials)
                .seed(seed)
                .shard_size(shard_size)
                .threads(threads);
            let result = spec.run_until(
                |&p, ctx, acc: &mut u64| {
                    let mut x = ctx.seed ^ p as u64;
                    for _ in 0..ctx.trials {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                        *acc += (x >> 62 == 0) as u64;
                    }
                },
                move |acc: &u64| *acc >= threshold,
            );
            (result.stats.clone(), result.trials_run.clone())
        };
        let reference = run(1);
        prop_assert_eq!(run(2), reference.clone());
        prop_assert_eq!(run(8), reference);
    }
}

proptest! {
    // Full-link randomized check: expensive per case, so only a handful,
    // but it exercises the real TX→channel→RX path end to end.
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn random_link_specs_thread_invariant(
        snr in 4.0f64..26.0,
        trials in 1usize..10,
        shard_size in 1usize..4,
        seed in any::<u64>(),
    ) {
        let run = |threads: usize| {
            let spec = SweepSpec::new("prop_link", link_points(&[snr]), trials)
                .seed(seed)
                .shard_size(shard_size)
                .threads(threads);
            stats_bytes(&run_link(&spec).stats)
        };
        let reference = run(1);
        prop_assert_eq!(run(2), reference.clone());
        prop_assert_eq!(run(8), reference);
    }
}
