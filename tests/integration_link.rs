//! End-to-end link integration: TX chain → channel simulator → RX chain,
//! across MCS, fading models and detectors.

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_channel::{ChannelConfig, Fading, TgnModel};
use mimonet_detect::DetectorKind;

#[test]
fn every_mcs_decodes_on_a_clean_channel() {
    for mcs in 0..16u8 {
        let n = if mcs < 8 { 1 } else { 2 };
        let cfg = LinkConfig::new(mcs, 120, ChannelConfig::awgn(n, n, 35.0));
        let stats = LinkSim::new(cfg, 1000 + mcs as u64).run(3);
        assert_eq!(stats.per.ok(), 3, "MCS{mcs}: {:?}", stats.per);
        assert_eq!(stats.payload_ber.errors(), 0, "MCS{mcs}");
    }
}

#[test]
fn three_and_four_stream_links_close_the_loop() {
    // MCS 17 (3x QPSK 1/2) over 3x3 and MCS 25 (4x QPSK 1/2) over 4x4.
    for (mcs, n) in [(17u8, 3usize), (25, 4)] {
        let cfg = LinkConfig::new(mcs, 150, ChannelConfig::awgn(n, n, 35.0));
        let stats = LinkSim::new(cfg, 1500 + mcs as u64).run(4);
        assert_eq!(stats.per.ok(), 4, "MCS{mcs} {n}x{n}: {:?}", stats.per);
        assert_eq!(stats.payload_ber.errors(), 0, "MCS{mcs}");
    }
}

#[test]
fn all_detectors_close_the_loop_on_mimo() {
    for det in [DetectorKind::Zf, DetectorKind::Mmse, DetectorKind::Ml] {
        let mut cfg = LinkConfig::new(9, 100, ChannelConfig::awgn(2, 2, 30.0));
        cfg.rx.detector = det;
        let stats = LinkSim::new(cfg, 2000).run(5);
        assert_eq!(stats.per.ok(), 5, "{det}: {:?}", stats.per);
    }
}

#[test]
fn spatial_multiplexing_halves_airtime() {
    // Same modulation/rate: MCS3 (1 stream) vs MCS11 (2 streams) — both
    // 16-QAM 1/2. At high SNR both deliver; the 2-stream airtime for the
    // same payload must be well under the 1-stream airtime.
    let c1 = LinkConfig::new(3, 500, ChannelConfig::awgn(1, 1, 35.0));
    let c2 = LinkConfig::new(11, 500, ChannelConfig::awgn(2, 2, 35.0));
    let t1 = LinkSim::new(c1.clone(), 3000).frame_airtime_us();
    let t2 = LinkSim::new(c2.clone(), 3001).frame_airtime_us();
    assert!(t2 < 0.65 * t1, "2-stream airtime {t2} vs 1-stream {t1}");
    assert_eq!(LinkSim::new(c1, 3000).run(3).per.ok(), 3);
    assert_eq!(LinkSim::new(c2, 3001).run(3).per.ok(), 3);
}

#[test]
fn link_survives_realistic_impairment_stack() {
    // CFO + SFO + timing offset + IQ imbalance + 12-bit ADC + TGn-B
    // multipath at a healthy SNR: the receiver pipeline must still
    // deliver most frames.
    let mut chan = ChannelConfig::awgn(2, 2, 28.0);
    chan.fading = Fading::Tgn(TgnModel::B);
    chan.cfo_norm = 0.22;
    chan.sfo_ppm = 10.0;
    chan.timing_offset = 11.5;
    chan.iq_epsilon = 0.02;
    chan.iq_phi = 0.01;
    chan.adc_bits = Some(12);
    let cfg = LinkConfig::new(9, 200, chan);
    let stats = LinkSim::new(cfg, 4000).run(25);
    assert!(
        stats.per.ok() >= 20,
        "impairment stack: {:?} (CFO err rms {})",
        stats.per,
        stats.cfo_error.rms()
    );
}

#[test]
fn ber_decreases_monotonically_with_snr() {
    // SISO so detection stays reliable at the low end (coded BER is
    // measured conditionally on frames that decode; a point where nothing
    // decodes would report a vacuous 0).
    let mut bers = Vec::new();
    for snr in [7.0, 10.0, 13.0] {
        let cfg = LinkConfig::new(1, 400, ChannelConfig::awgn(1, 1, snr));
        let stats = LinkSim::new(cfg, 5000).run(30);
        assert!(stats.coded_ber.bits() > 0, "no frames decoded at {snr} dB");
        bers.push(stats.coded_ber.ber());
    }
    assert!(
        bers[0] > bers[1] && bers[1] > bers[2],
        "BER vs SNR: {bers:?}"
    );
}

#[test]
fn soft_decoding_beats_hard_decoding() {
    let snr = 8.0;
    let run = |soft: bool| {
        let mut cfg = LinkConfig::new(9, 400, ChannelConfig::awgn(2, 2, snr));
        cfg.rx.soft_decoding = soft;
        LinkSim::new(cfg, 6000).run(60)
    };
    let s = run(true);
    let h = run(false);
    assert!(
        s.payload_ber.ber() <= h.payload_ber.ber(),
        "soft {} vs hard {}",
        s.payload_ber.ber(),
        h.payload_ber.ber()
    );
    assert!(
        h.payload_ber.errors() > 0,
        "operating point must stress the decoder"
    );
}

#[test]
fn mimo_rayleigh_detector_ordering() {
    // On flat Rayleigh 2×2, ML ≥ MMSE ≥ ZF in delivered frames.
    let run = |det: DetectorKind| {
        let mut chan = ChannelConfig::awgn(2, 2, 18.0);
        chan.fading = Fading::RayleighFlat;
        let mut cfg = LinkConfig::new(9, 100, chan);
        cfg.rx.detector = det;
        LinkSim::new(cfg, 7000).run(120).per.ok()
    };
    let zf = run(DetectorKind::Zf);
    let mmse = run(DetectorKind::Mmse);
    let ml = run(DetectorKind::Ml);
    assert!(ml >= mmse, "ML {ml} vs MMSE {mmse}");
    assert!(mmse >= zf, "MMSE {mmse} vs ZF {zf}");
    assert!(
        ml > zf,
        "ML {ml} must strictly beat ZF {zf} over 120 Rayleigh frames"
    );
}

#[test]
fn slow_mobility_does_not_break_the_link() {
    // Pedestrian-class Doppler (1e-6 cycles/sample ≈ 20 Hz at 20 Msps):
    // the block channel estimate stays valid across the frame.
    let mut chan = ChannelConfig::awgn(2, 2, 28.0);
    chan.fading = Fading::Jakes { fd_norm: 1e-6 };
    let cfg = LinkConfig::new(9, 500, chan);
    let stats = LinkSim::new(cfg, 9500).run(30);
    assert!(stats.per.ok() >= 28, "pedestrian Doppler: {:?}", stats.per);
}

#[test]
fn fast_mobility_kills_long_frames_first() {
    let run = |payload: usize| {
        let mut chan = ChannelConfig::awgn(2, 2, 28.0);
        chan.fading = Fading::Jakes { fd_norm: 4e-5 };
        let cfg = LinkConfig::new(9, payload, chan);
        LinkSim::new(cfg, 9600).run(40).per.per()
    };
    let short = run(100);
    let long = run(1500);
    assert!(
        long > short + 0.2,
        "channel aging must hit long frames harder: short {short}, long {long}"
    );
}

#[test]
fn snr_estimate_tracks_truth_across_sweep() {
    for snr in [5.0, 15.0, 25.0] {
        let cfg = LinkConfig::new(0, 100, ChannelConfig::awgn(1, 1, snr));
        let stats = LinkSim::new(cfg, 8000).run(20);
        let est = stats.snr_est_db.mean();
        assert!(
            (est - snr).abs() < 2.0,
            "true {snr} dB, preamble estimate {est} dB"
        );
    }
}

#[test]
fn per_increases_with_payload_size_at_fixed_snr() {
    let run = |len: usize| {
        let cfg = LinkConfig::new(9, len, ChannelConfig::awgn(2, 2, 7.6));
        LinkSim::new(cfg, 9000).run(80).per.per()
    };
    let short = run(50);
    let long = run(1000);
    assert!(
        long > short,
        "longer frames must fail more: short {short} long {long}"
    );
}
