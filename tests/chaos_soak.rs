//! Chaos soak: the full MIMO link under many seeded fault schedules, plus
//! the supervised scheduler under injected block misbehaviour.
//!
//! The contract under test (ISSUE 2 acceptance criteria):
//!
//! * across ≥ 32 seeded fault schedules, zero panics anywhere in the
//!   stack and typed errors only;
//! * the receiver recovers ≥ 90% of frames transmitted after the fault
//!   window closes;
//! * `run_threaded` terminates with a typed `GraphError` — never hangs —
//!   when a block panics, stalls, or fails, demonstrated through
//!   `FaultInjectorBlock`.

use mimonet::chaos::{run_chaos_capture, ChaosConfig};
use mimonet::link::LinkStats;
use mimonet_channel::{ChannelConfig, FaultSpec};
use mimonet_runtime::faults::{FaultInjectorBlock, FaultMode};
use mimonet_runtime::{
    Flowgraph, GraphError, Item, MessageHub, SupervisorConfig, VectorSink, VectorSource,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SOAK_SEEDS: u64 = 32;

fn soak_config(mcs: u8, n_rx: usize) -> ChaosConfig {
    ChaosConfig::new(
        mcs,
        6,
        ChannelConfig::awgn(if mcs >= 8 { 2 } else { 1 }, n_rx, 30.0),
        FaultSpec::harsh_mid_capture(),
    )
}

#[test]
fn soak_32_fault_schedules_mimo_recovers_after_window() {
    let cfg = soak_config(8, 2);
    let mut stats = LinkStats::default();
    for seed in 0..SOAK_SEEDS {
        run_chaos_capture(&cfg, 0xC0C0_A000 ^ (seed * 0x9E37_79B9), &mut stats);
    }
    assert_eq!(stats.per.sent(), SOAK_SEEDS * 6);
    assert!(
        stats.recovery.fault_events() >= SOAK_SEEDS,
        "every schedule must inject something: {}",
        stats.recovery.fault_events()
    );
    let (post_sent, post_ok) = stats.recovery.post_fault();
    assert!(
        post_sent > 0,
        "captures must have frames after the fault window"
    );
    let recovery = stats.recovery.post_fault_recovery();
    assert!(
        recovery >= 0.9,
        "post-fault recovery {recovery:.3} < 0.9 ({post_ok}/{post_sent})"
    );
}

#[test]
fn soak_siso_with_truncation_and_desync() {
    // Truncation + desync on top of the noise faults: the capture ends
    // mid-stream and the antennas slip; the receiver must survive (typed
    // errors only) even though late frames are physically gone.
    let mut cfg = soak_config(0, 1);
    cfg.faults = FaultSpec {
        desyncs: 1,
        max_slip: 3,
        truncate_frac: 0.85,
        ..FaultSpec::harsh_mid_capture()
    };
    let mut stats = LinkStats::default();
    for seed in 0..SOAK_SEEDS {
        let report = run_chaos_capture(&cfg, 0xDEAD_0000 ^ seed, &mut stats);
        assert!(
            report.truncated_samples > 0,
            "truncation must engage (seed {seed})"
        );
    }
    assert_eq!(stats.per.sent(), SOAK_SEEDS * 6);
    // Sanity: the harsh schedule can't have killed literally everything.
    assert!(
        stats.per.ok() > 0,
        "some frames must survive: {:?}",
        stats.per
    );
}

#[test]
fn soak_schedules_are_reproducible() {
    let cfg = soak_config(8, 2);
    let run = |seed: u64| {
        let mut stats = LinkStats::default();
        let report = run_chaos_capture(&cfg, seed, &mut stats);
        (
            stats.per.ok(),
            stats.recovery.faulted(),
            stats.recovery.post_fault(),
            report.corrupted_samples,
            report.zeroed_samples,
        )
    };
    for seed in [1u64, 77, 0xFFFF_FFFF_0000_0001] {
        assert_eq!(run(seed), run(seed), "seed {seed} not reproducible");
    }
}

// --- Supervised-scheduler termination under injected block faults ---

fn pipeline_with(mode: FaultMode, wrap_sink: bool) -> Flowgraph {
    let mut fg = Flowgraph::new();
    let source =
        VectorSource::new((0..2000u32).map(|i| Item::Real(i as f64)).collect()).with_chunk(64);
    let (sink, _handle) = VectorSink::new();
    if wrap_sink {
        let src = fg.add(source);
        let snk = fg.add(FaultInjectorBlock::new(sink, mode, 1));
        fg.connect(src, 0, snk, 0).unwrap();
    } else {
        let src = fg.add(FaultInjectorBlock::new(source, mode, 1));
        let snk = fg.add(sink);
        fg.connect(src, 0, snk, 0).unwrap();
    }
    fg
}

fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        stall_timeout: Duration::from_millis(150),
        ..SupervisorConfig::default()
    }
}

#[test]
fn threaded_scheduler_never_hangs_on_injected_faults() {
    // Every fault mode, injected either side of the edge, must produce a
    // typed GraphError within a bounded wall-clock time.
    let cases: Vec<(FaultMode, bool, &str)> = vec![
        (FaultMode::Panic { at: 5 }, false, "panic in source"),
        (FaultMode::Fail { at: 5 }, false, "typed error in source"),
        // Sink faults fire on the first call: a later threshold can race
        // a fast sink that drains everything in one or two work calls.
        (FaultMode::Panic { at: 0 }, true, "panic in sink"),
        (FaultMode::Fail { at: 0 }, true, "typed error in sink"),
        (FaultMode::Stall { after: 0 }, true, "stalled sink"),
    ];
    for (mode, wrap_sink, what) in cases {
        let fg = pipeline_with(mode, wrap_sink);
        let start = Instant::now();
        let err = fg
            .run_threaded_with(Arc::new(MessageHub::new()), fast_supervisor())
            .expect_err(what);
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "{what}: scheduler took {:?}",
            start.elapsed()
        );
        match (&err, what) {
            (GraphError::BlockPanicked { payload, .. }, _) => {
                assert!(
                    payload.contains("injected fault"),
                    "{what}: payload {payload:?}"
                );
            }
            (GraphError::BlockFailed { error, .. }, _) => {
                assert_eq!(error.kind, "injected", "{what}");
            }
            (GraphError::BlockStalled { idle, .. }, _) => {
                assert!(*idle >= Duration::from_millis(150), "{what}");
            }
            other => panic!("{what}: unexpected {other:?}"),
        }
    }
}

#[test]
fn corrupting_injector_does_not_break_the_graph() {
    // Sample corruption is a data-plane fault, not a control-plane one:
    // the graph must complete normally and deliver (corrupted) items.
    let mut fg = Flowgraph::new();
    let clean: Vec<u8> = (0..500u16).map(|i| (i % 251) as u8).collect();
    let src = fg.add(FaultInjectorBlock::new(
        VectorSource::new(clean.iter().copied().map(Item::Byte).collect()).with_chunk(32),
        FaultMode::CorruptItems {
            after: 0,
            rate: 0.25,
        },
        42,
    ));
    let (sink, handle) = VectorSink::new();
    let snk = fg.add(sink);
    fg.connect(src, 0, snk, 0).unwrap();
    fg.run_threaded(Arc::new(MessageHub::new())).unwrap();
    let got = handle.bytes();
    assert_eq!(got.len(), 500, "corruption must not drop items");
    assert_ne!(got, clean, "rate 0.25 must corrupt something");
}
