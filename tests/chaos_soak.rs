//! Chaos soak: the full MIMO link under many seeded fault schedules, plus
//! the supervised scheduler under injected block misbehaviour.
//!
//! The contract under test (ISSUE 2 acceptance criteria):
//!
//! * across ≥ 32 seeded fault schedules, zero panics anywhere in the
//!   stack and typed errors only;
//! * the receiver recovers ≥ 90% of frames transmitted after the fault
//!   window closes;
//! * `run_threaded` terminates with a typed `GraphError` — never hangs —
//!   when a block panics, stalls, or fails, demonstrated through
//!   `FaultInjectorBlock`.

use mimonet::chaos::{run_chaos_capture, ChaosConfig};
use mimonet::link::LinkStats;
use mimonet::BerCounter;
use mimonet_channel::{ChannelConfig, FaultSpec};
use mimonet_runtime::faults::{FaultInjectorBlock, FaultMode};
use mimonet_runtime::{
    Block, BlockCtx, Flowgraph, GraphError, InputBuffer, Item, MessageHub, OutputBuffer,
    SupervisorConfig, VectorSink, VectorSource, WorkStatus,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SOAK_SEEDS: u64 = 32;

fn soak_config(mcs: u8, n_rx: usize) -> ChaosConfig {
    ChaosConfig::new(
        mcs,
        6,
        ChannelConfig::awgn(if mcs >= 8 { 2 } else { 1 }, n_rx, 30.0),
        FaultSpec::harsh_mid_capture(),
    )
}

#[test]
fn soak_32_fault_schedules_mimo_recovers_after_window() {
    let cfg = soak_config(8, 2);
    let mut stats = LinkStats::default();
    for seed in 0..SOAK_SEEDS {
        run_chaos_capture(&cfg, 0xC0C0_A000 ^ (seed * 0x9E37_79B9), &mut stats);
    }
    assert_eq!(stats.per.sent(), SOAK_SEEDS * 6);
    assert!(
        stats.recovery.fault_events() >= SOAK_SEEDS,
        "every schedule must inject something: {}",
        stats.recovery.fault_events()
    );
    let (post_sent, post_ok) = stats.recovery.post_fault();
    assert!(
        post_sent > 0,
        "captures must have frames after the fault window"
    );
    let recovery = stats.recovery.post_fault_recovery();
    assert!(
        recovery >= 0.9,
        "post-fault recovery {recovery:.3} < 0.9 ({post_ok}/{post_sent})"
    );
}

#[test]
fn soak_siso_with_truncation_and_desync() {
    // Truncation + desync on top of the noise faults: the capture ends
    // mid-stream and the antennas slip; the receiver must survive (typed
    // errors only) even though late frames are physically gone.
    let mut cfg = soak_config(0, 1);
    cfg.faults = FaultSpec {
        desyncs: 1,
        max_slip: 3,
        truncate_frac: 0.85,
        ..FaultSpec::harsh_mid_capture()
    };
    let mut stats = LinkStats::default();
    for seed in 0..SOAK_SEEDS {
        let report = run_chaos_capture(&cfg, 0xDEAD_0000 ^ seed, &mut stats);
        assert!(
            report.truncated_samples > 0,
            "truncation must engage (seed {seed})"
        );
    }
    assert_eq!(stats.per.sent(), SOAK_SEEDS * 6);
    // Sanity: the harsh schedule can't have killed literally everything.
    assert!(
        stats.per.ok() > 0,
        "some frames must survive: {:?}",
        stats.per
    );
}

#[test]
fn soak_schedules_are_reproducible() {
    let cfg = soak_config(8, 2);
    let run = |seed: u64| {
        let mut stats = LinkStats::default();
        let report = run_chaos_capture(&cfg, seed, &mut stats);
        (
            stats.per.ok(),
            stats.recovery.faulted(),
            stats.recovery.post_fault(),
            report.corrupted_samples,
            report.zeroed_samples,
        )
    };
    for seed in [1u64, 77, 0xFFFF_FFFF_0000_0001] {
        assert_eq!(run(seed), run(seed), "seed {seed} not reproducible");
    }
}

// --- Supervised-scheduler termination under injected block faults ---

fn pipeline_with(mode: FaultMode, wrap_sink: bool) -> Flowgraph {
    let mut fg = Flowgraph::new();
    let source =
        VectorSource::new((0..2000u32).map(|i| Item::Real(i as f64)).collect()).with_chunk(64);
    let (sink, _handle) = VectorSink::new();
    if wrap_sink {
        let src = fg.add(source);
        let snk = fg.add(FaultInjectorBlock::new(sink, mode, 1));
        fg.connect(src, 0, snk, 0).unwrap();
    } else {
        let src = fg.add(FaultInjectorBlock::new(source, mode, 1));
        let snk = fg.add(sink);
        fg.connect(src, 0, snk, 0).unwrap();
    }
    fg
}

fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        stall_timeout: Duration::from_millis(150),
        ..SupervisorConfig::default()
    }
}

#[test]
fn threaded_scheduler_never_hangs_on_injected_faults() {
    // Every fault mode, injected either side of the edge, must produce a
    // typed GraphError within a bounded wall-clock time.
    let cases: Vec<(FaultMode, bool, &str)> = vec![
        (FaultMode::Panic { at: 5 }, false, "panic in source"),
        (FaultMode::Fail { at: 5 }, false, "typed error in source"),
        // Sink faults fire on the first call: a later threshold can race
        // a fast sink that drains everything in one or two work calls.
        (FaultMode::Panic { at: 0 }, true, "panic in sink"),
        (FaultMode::Fail { at: 0 }, true, "typed error in sink"),
        (FaultMode::Stall { after: 0 }, true, "stalled sink"),
    ];
    for (mode, wrap_sink, what) in cases {
        let fg = pipeline_with(mode, wrap_sink);
        let start = Instant::now();
        let err = fg
            .run_threaded_with(Arc::new(MessageHub::new()), fast_supervisor())
            .expect_err(what);
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "{what}: scheduler took {:?}",
            start.elapsed()
        );
        match (&err, what) {
            (GraphError::BlockPanicked { payload, .. }, _) => {
                assert!(
                    payload.contains("injected fault"),
                    "{what}: payload {payload:?}"
                );
            }
            (GraphError::BlockFailed { error, .. }, _) => {
                assert_eq!(error.kind, "injected", "{what}");
            }
            (GraphError::BlockStalled { idle, .. }, _) => {
                assert!(*idle >= Duration::from_millis(150), "{what}");
            }
            other => panic!("{what}: unexpected {other:?}"),
        }
    }
}

/// A sink that feeds mismatched-length streams to
/// [`BerCounter::compare_bytes`] on its first work call with data.
struct MismatchedBerSink;

impl Block for MismatchedBerSink {
    fn name(&self) -> &str {
        "ber_mismatch_sink"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        0
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        _outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        if inputs[0].available() == 0 {
            return WorkStatus::Blocked;
        }
        // Misaligned on purpose: 3 sent bytes against 2 received.
        BerCounter::default().compare_bytes(&[0u8; 3], &[0u8; 2]);
        unreachable!("compare_bytes must reject mismatched lengths");
    }
}

#[test]
fn ber_length_mismatch_panic_names_both_lengths_through_supervisor() {
    // The assert inside BerCounter must carry both stream lengths, and
    // the supervised scheduler must surface that exact message as a
    // typed BlockPanicked — the payload is the only diagnostic a soak
    // run gets.
    let mut fg = Flowgraph::new();
    let src = fg.add(VectorSource::new(
        (0..64u32).map(|i| Item::Byte(i as u8)).collect(),
    ));
    let snk = fg.add(MismatchedBerSink);
    fg.connect(src, 0, snk, 0).unwrap();
    let err = fg
        .run_threaded_with(Arc::new(MessageHub::new()), fast_supervisor())
        .expect_err("mismatched BER comparison must fail the graph");
    match err {
        GraphError::BlockPanicked { payload, .. } => {
            assert!(
                payload.contains("byte stream length mismatch"),
                "payload: {payload:?}"
            );
            assert!(
                payload.contains("sent 3 bytes") && payload.contains("received 2 bytes"),
                "panic message must name both lengths: {payload:?}"
            );
        }
        other => panic!("expected BlockPanicked, got {other:?}"),
    }
}

/// A deliberately slow sink: sleeps on every work call and drains at
/// most `chunk` items per call, so total runtime far exceeds the stall
/// timeout while progress never stops.
struct SlowSink {
    received: Arc<std::sync::atomic::AtomicUsize>,
    chunk: usize,
    delay: Duration,
}

impl Block for SlowSink {
    fn name(&self) -> &str {
        "slow_sink"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        0
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        _outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        std::thread::sleep(self.delay);
        let n = inputs[0].available().min(self.chunk);
        if n > 0 {
            inputs[0].take(n);
            self.received
                .fetch_add(n, std::sync::atomic::Ordering::SeqCst);
            WorkStatus::Progress
        } else if inputs[0].is_finished() {
            WorkStatus::Done
        } else {
            WorkStatus::Blocked
        }
    }
}

#[test]
fn slow_but_progressing_sink_is_not_a_stall() {
    // Regression guard for the stall watchdog: a block that is merely
    // slow — every work call sleeps, total runtime far beyond the stall
    // timeout — must NOT be killed, because it heartbeats between calls.
    // Only a block that stops progressing entirely is a stall. (The
    // total sleep here is >= 10 x 60 ms against a 150 ms stall timeout,
    // so a watchdog that accumulated a slow block's time across work
    // calls would fire spuriously.)
    let received = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut fg = Flowgraph::new();
    let items: Vec<Item> = (0..400u16).map(|i| Item::Byte((i % 251) as u8)).collect();
    let src = fg.add(VectorSource::new(items).with_chunk(50));
    let snk = fg.add(SlowSink {
        received: received.clone(),
        chunk: 40,
        delay: Duration::from_millis(60),
    });
    fg.connect(src, 0, snk, 0).unwrap();
    let start = Instant::now();
    fg.run_threaded_with(Arc::new(MessageHub::new()), fast_supervisor())
        .expect("a slow-but-progressing sink must not trip the stall watchdog");
    assert!(
        start.elapsed() >= Duration::from_millis(300),
        "sanity: the sink must actually have been slow ({:?})",
        start.elapsed()
    );
    assert_eq!(
        received.load(std::sync::atomic::Ordering::SeqCst),
        400,
        "every item must still arrive"
    );
}

#[test]
fn corrupting_injector_does_not_break_the_graph() {
    // Sample corruption is a data-plane fault, not a control-plane one:
    // the graph must complete normally and deliver (corrupted) items.
    let mut fg = Flowgraph::new();
    let clean: Vec<u8> = (0..500u16).map(|i| (i % 251) as u8).collect();
    let src = fg.add(FaultInjectorBlock::new(
        VectorSource::new(clean.iter().copied().map(Item::Byte).collect()).with_chunk(32),
        FaultMode::CorruptItems {
            after: 0,
            rate: 0.25,
        },
        42,
    ));
    let (sink, handle) = VectorSink::new();
    let snk = fg.add(sink);
    fg.connect(src, 0, snk, 0).unwrap();
    fg.run_threaded(Arc::new(MessageHub::new())).unwrap();
    let got = handle.bytes();
    assert_eq!(got.len(), 500, "corruption must not drop items");
    assert_ne!(got, clean, "rate 0.25 must corrupt something");
}
