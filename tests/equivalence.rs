//! Equivalence proptests: the zero-copy receiver against the verbatim
//! pre-optimization implementation in `mimonet::rx_reference`.
//!
//! The optimization contract is *bit identity*, not approximate
//! agreement: every floating-point operation in the hot path was kept in
//! its original order, so `Receiver` and `ReferenceReceiver` must agree
//! on every field of every frame (`RxFrame` is `PartialEq`, comparing
//! `f64`s exactly), on every error, and on every scan statistic — across
//! random MCS, payloads, channels, impairments and receiver ablations.

use mimonet::config::TxConfig;
use mimonet::rx_reference::ReferenceReceiver;
use mimonet::tx::Transmitter;
use mimonet::{Receiver, RxConfig};
use mimonet_channel::{ChannelConfig, ChannelSim, Fading};
use mimonet_detect::DetectorKind;
use mimonet_dsp::complex::Complex64;
use proptest::prelude::*;

/// Transmit one frame and pad it with lead-in/out silence.
fn padded_frame(mcs: u8, psdu: &[u8], lead: usize) -> Vec<Vec<Complex64>> {
    let tx = Transmitter::new(TxConfig::new(mcs).unwrap());
    let mut streams = tx.transmit(psdu).unwrap();
    for s in &mut streams {
        let mut padded = vec![Complex64::ZERO; lead];
        padded.extend_from_slice(s);
        padded.extend(vec![Complex64::ZERO; 80]);
        *s = padded;
    }
    streams
}

fn rx_config(n_rx: usize, detector: DetectorKind, soft: bool, fine: bool, pilot: bool) -> RxConfig {
    let mut cfg = RxConfig::new(n_rx);
    cfg.detector = detector;
    cfg.soft_decoding = soft;
    cfg.fine_timing = fine;
    cfg.pilot_tracking = pilot;
    cfg
}

fn detector_kind(idx: u8) -> DetectorKind {
    match idx % 3 {
        0 => DetectorKind::Mmse,
        1 => DetectorKind::Zf,
        _ => DetectorKind::Ml,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Single-frame receive: identical `Ok(frame)` (every field, exact
    /// f64 bits) or identical `Err` on random links — including low-SNR
    /// points where one of the two would first diverge if the optimized
    /// arithmetic differed by even an ulp.
    #[test]
    fn receive_matches_reference(
        mcs in 0u8..16,
        len in 20usize..180,
        snr_centi in 600u32..3500,
        seed in any::<u64>(),
        cfo_milli in -400i32..400,
        det_idx in 0u8..3,
        soft in any::<bool>(),
        fine in any::<bool>(),
        pilot in any::<bool>(),
        rayleigh in any::<bool>(),
    ) {
        let snr = f64::from(snr_centi) / 100.0;
        let psdu: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect();
        let n_tx = if mcs >= 8 { 2 } else { 1 };
        // The ideal (identity) channel requires square dimensions; a
        // Rayleigh channel can also exercise the 1x2 SIMO geometry.
        let n_rx = if rayleigh { 2 } else { n_tx };
        let streams = padded_frame(mcs, &psdu, 120);
        let mut chan = ChannelConfig::awgn(n_tx, n_rx, snr);
        chan.cfo_norm = f64::from(cfo_milli) / 1000.0;
        if rayleigh {
            chan.fading = Fading::RayleighFlat;
        }
        let mut sim = ChannelSim::new(chan, seed);
        let (noisy, _) = sim.apply(&streams);

        let cfg = rx_config(n_rx, detector_kind(det_idx), soft, fine, pilot);
        let got = Receiver::new(cfg.clone()).receive(&noisy);
        let want = ReferenceReceiver::new(cfg).receive(&noisy);
        prop_assert_eq!(got, want);
    }

    /// Multi-frame scan: identical frame list (offsets + exact frames)
    /// and identical robustness statistics. This covers the view-based
    /// scan window logic (stride advance, NoPacket overlap rescan) and
    /// workspace reuse across back-to-back decodes within one capture.
    #[test]
    fn scan_matches_reference(
        n_frames in 1usize..4,
        base_len in 30usize..100,
        gap in 150usize..400,
        snr_centi in 900u32..3200,
        seed in any::<u64>(),
        mcs in 8u8..13,
    ) {
        let mut capture: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; 150]; 2];
        for k in 0..n_frames {
            let psdu: Vec<u8> = (0..base_len + 11 * k).map(|i| i as u8).collect();
            let streams = padded_frame(mcs, &psdu, 0);
            for (c, s) in capture.iter_mut().zip(&streams) {
                c.extend_from_slice(s);
                c.extend(vec![Complex64::ZERO; gap]);
            }
        }
        let snr = f64::from(snr_centi) / 100.0;
        let mut sim = ChannelSim::new(ChannelConfig::awgn(2, 2, snr), seed);
        let (noisy, _) = sim.apply(&capture);

        let cfg = RxConfig::new(2);
        let (got_frames, got_stats) = Receiver::new(cfg.clone()).scan(&noisy);
        let (want_frames, want_stats) = ReferenceReceiver::new(cfg).scan(&noisy);
        prop_assert_eq!(got_frames, want_frames);
        prop_assert_eq!(got_stats, want_stats);
    }
}

/// Deterministic spot checks on receiver ablations the proptests sample
/// only occasionally: smoothing on, hard decoding, VdB timing fallback.
#[test]
fn ablations_match_reference() {
    let psdu: Vec<u8> = (0..90u8).collect();
    let streams = padded_frame(9, &psdu, 120);
    let mut chan = ChannelConfig::awgn(2, 2, 22.0);
    chan.cfo_norm = 0.15;
    let mut sim = ChannelSim::new(chan, 77);
    let (noisy, _) = sim.apply(&streams);

    for (soft, fine, smoothing) in [
        (true, true, 2usize),
        (false, false, 0),
        (true, false, 1),
        (false, true, 3),
    ] {
        let mut cfg = RxConfig::new(2);
        cfg.soft_decoding = soft;
        cfg.fine_timing = fine;
        cfg.smoothing = smoothing;
        let got = Receiver::new(cfg.clone()).receive(&noisy);
        let want = ReferenceReceiver::new(cfg).receive(&noisy);
        assert_eq!(got, want, "soft={soft} fine={fine} smoothing={smoothing}");
    }
}
