//! Allocation-regression pin for the RX hot path.
//!
//! A counting global allocator wraps `System`; after one warm-up decode
//! through a given `RxWorkspace`/`RxFrame` pair, a second decode of the
//! same capture must perform **zero** heap allocations. Any future change
//! that sneaks a `Vec`, `to_vec` or `collect` back into the per-frame
//! path fails here with the allocation count, not in a profiler weeks
//! later.
//!
//! The ML detector is deliberately *not* pinned: its hypothesis table
//! (`Prepared::Ml::pred`) scales with `points^n_ss` and is rebuilt per
//! frame by design. The default MMSE path — what every benchmark and
//! sweep runs — is the one held to zero.
//!
//! This file must contain exactly one `#[test]`: the libtest harness runs
//! tests on multiple threads, and a concurrent test's allocations would
//! be charged to the counter.

use mimonet::config::TxConfig;
use mimonet::tx::Transmitter;
use mimonet::{Receiver, RxConfig, RxFrame, RxWorkspace};
use mimonet_channel::{ChannelConfig, ChannelSim};
use mimonet_dsp::complex::Complex64;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static REALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_receive_into_allocates_nothing() {
    // One 2x2 MCS9 frame through a mild AWGN channel — the standard
    // bench link. Built *before* arming the counter.
    let psdu: Vec<u8> = (0..200u8).collect();
    let tx = Transmitter::new(TxConfig::new(9).unwrap());
    let mut streams = tx.transmit(&psdu).unwrap();
    for s in &mut streams {
        let mut padded = vec![Complex64::ZERO; 160];
        padded.extend_from_slice(s);
        padded.extend(vec![Complex64::ZERO; 80]);
        *s = padded;
    }
    let mut sim = ChannelSim::new(ChannelConfig::awgn(2, 2, 30.0), 42);
    let (noisy, _) = sim.apply(&streams);
    let views: Vec<&[Complex64]> = noisy.iter().map(|a| a.as_slice()).collect();

    let rx = Receiver::new(RxConfig::new(2));
    let mut ws = RxWorkspace::new();
    let mut frame = RxFrame::default();

    // Warm up: every scratch buffer grows to its working size, and the
    // decode must actually succeed (a failed decode exercises less of
    // the pipeline and would make the zero-alloc claim vacuous).
    for _ in 0..2 {
        rx.receive_into(&views, &mut ws, &mut frame)
            .expect("warm-up decode");
        assert_eq!(frame.psdu, psdu);
    }

    ALLOCS.store(0, Ordering::SeqCst);
    REALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let res = rx.receive_into(&views, &mut ws, &mut frame);
    ARMED.store(false, Ordering::SeqCst);

    res.expect("measured decode");
    assert_eq!(frame.psdu, psdu);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    let reallocs = REALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        (allocs, reallocs),
        (0, 0),
        "warmed Receiver::receive_into must not touch the heap \
         ({allocs} allocations, {reallocs} reallocations)"
    );
}
