//! The scenario engine's core contract: a K-link scenario report is
//! byte-identical for any worker-thread count AND any order of the
//! `[[links]]` tables. Both follow from the seed tree — every per-link
//! stream hangs off `name_seed(scenario_seed, LINK_TAG, name)`, never
//! off a list position or a worker identity — and from the report
//! sorting links by name before any floating-point aggregation.
//!
//! A proptest drives both axes at once over randomized scenario shapes
//! (link count, SNRs, interference model/coupling, adaptation, faults,
//! transport loss, mobility), plus directed cases for the soak-style
//! mixed-feature scenario.

use mimonet::scenario::{
    InterferenceModel, InterferenceSpec, LinkSpec, ScenarioSpec, TransportSpec,
};
use proptest::prelude::*;
use serde::{json, Serialize};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Renders a scenario report to its canonical JSON bytes.
fn report_bytes(spec: &ScenarioSpec, threads: usize) -> String {
    json::to_string(&spec.run(threads).serialize())
}

/// A small mixed-feature scenario: every engine feature lit at once, at
/// test-suite-friendly size.
fn mixed_scenario(seed: u64, k: usize) -> ScenarioSpec {
    let presets = ["awgn", "tgn_b", "jakes_pedestrian", "tgn_d"];
    let links = (0..k)
        .map(|i| LinkSpec {
            name: format!("link-{i}"),
            preset: presets[i % presets.len()].into(),
            snr_db: 26.0 + 2.0 * (i % 3) as f64,
            adapt: i % 2 == 0,
            band: (i % 2) as u64,
            payload_len: 48,
            faults: if i % 4 == 3 {
                "default".into()
            } else {
                "none".into()
            },
            mobility: if i % 3 == 0 {
                vec![(0.0, 30.0), (3.0, 26.0)]
            } else {
                Vec::new()
            },
            transport: (i % 4 == 2).then_some(TransportSpec {
                chunk_len: 512,
                drop_rate: 0.1,
            }),
            ..LinkSpec::default()
        })
        .collect();
    ScenarioSpec {
        name: "mixed".into(),
        seed,
        rounds: 3,
        interference: InterferenceSpec {
            model: InterferenceModel::Burst,
            coupling_db: -16.0,
        },
        links,
    }
}

#[test]
fn four_link_soak_identical_across_thread_counts() {
    let spec = mixed_scenario(0x50AC, 4);
    let reference = report_bytes(&spec, THREAD_COUNTS[0]);
    assert!(reference.contains("goodput_mbps"), "sanity: report shape");
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            report_bytes(&spec, threads),
            reference,
            "thread count {threads} changed the report bytes"
        );
    }
}

#[test]
fn link_order_does_not_change_the_report() {
    let spec = mixed_scenario(0x0D0E, 5);
    let reference = report_bytes(&spec, 2);
    // Rotations and a reversal cover every pairwise order change without
    // enumerating 5! permutations.
    for rotation in 1..spec.links.len() {
        let mut permuted = spec.clone();
        permuted.links.rotate_left(rotation);
        assert_eq!(
            report_bytes(&permuted, 2),
            reference,
            "rotation {rotation} changed the report bytes"
        );
    }
    let mut reversed = spec.clone();
    reversed.links.reverse();
    assert_eq!(report_bytes(&reversed, 2), reference);
}

/// One random scenario shape: K links with randomized per-link knobs.
fn arb_scenario() -> impl Strategy<Value = (ScenarioSpec, usize)> {
    let link = (
        24.0..34.0f64, // snr_db
        any::<bool>(), // adapt
        0..2u64,       // band
        any::<bool>(), // transport loss
        any::<bool>(), // mobility
    );
    (
        any::<u64>(), // scenario seed
        prop::collection::vec(link, 2..5),
        prop_oneof![
            Just(InterferenceModel::None),
            Just(InterferenceModel::Burst),
            Just(InterferenceModel::Waveform),
        ],
        -24.0..-10.0f64, // coupling_db
        0..3usize,       // rotation applied to the link list
    )
        .prop_map(|(seed, links, model, coupling_db, rotation)| {
            let links = links
                .into_iter()
                .enumerate()
                .map(|(i, (snr_db, adapt, band, lossy, mobile))| LinkSpec {
                    name: format!("n{i}"),
                    snr_db,
                    adapt,
                    band,
                    payload_len: 40,
                    transport: lossy.then_some(TransportSpec {
                        chunk_len: 400,
                        drop_rate: 0.15,
                    }),
                    mobility: if mobile {
                        vec![(0.0, snr_db), (2.0, snr_db - 4.0)]
                    } else {
                        Vec::new()
                    },
                    ..LinkSpec::default()
                })
                .collect();
            (
                ScenarioSpec {
                    name: "prop".into(),
                    seed,
                    rounds: 2,
                    interference: InterferenceSpec { model, coupling_db },
                    links,
                },
                rotation,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The product contract, both axes at once: for a random scenario,
    /// every thread count in {1, 2, 8} and a random rotation of the link
    /// list all produce the same report bytes.
    #[test]
    fn random_scenarios_are_order_and_thread_invariant((spec, rotation) in arb_scenario()) {
        spec.validate().expect("generated scenarios are valid");
        let reference = report_bytes(&spec, 1);
        for &threads in &THREAD_COUNTS[1..] {
            prop_assert_eq!(
                &report_bytes(&spec, threads),
                &reference,
                "thread count {} changed the bytes", threads
            );
        }
        let mut permuted = spec.clone();
        let k = permuted.links.len();
        permuted.links.rotate_left(rotation % k);
        prop_assert_eq!(
            &report_bytes(&permuted, 8),
            &reference,
            "link rotation {} changed the bytes", rotation % k
        );
    }

    /// Re-running the same spec twice is byte-stable (no hidden global
    /// state in the engine).
    #[test]
    fn reruns_are_byte_stable(seed in any::<u64>()) {
        let spec = mixed_scenario(seed, 3);
        prop_assert_eq!(report_bytes(&spec, 2), report_bytes(&spec, 2));
    }
}
