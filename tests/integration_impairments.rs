//! Impairment-tolerance integration: each RF impairment swept to (near)
//! its design limit individually, verifying the corresponding receiver
//! countermeasure actually earns its keep.

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_channel::ChannelConfig;

const SNR_DB: f64 = 30.0;

fn run_with(chan: ChannelConfig, mcs: u8, seed: u64, frames: usize) -> (u64, u64) {
    let cfg = LinkConfig::new(mcs, 150, chan);
    let stats = LinkSim::new(cfg, seed).run(frames);
    (stats.per.ok(), stats.per.sent())
}

#[test]
fn cfo_tolerance_across_the_acquisition_range() {
    // STF coarse CFO (±2 spacings) + LTF fine CFO: anything within ±1
    // spacing must decode reliably.
    for &cfo in &[-1.0, -0.45, -0.1, 0.3, 0.45, 1.0] {
        let mut chan = ChannelConfig::awgn(2, 2, SNR_DB);
        chan.cfo_norm = cfo;
        let (ok, sent) = run_with(chan, 9, 10, 10);
        assert_eq!(ok, sent, "CFO {cfo}: {ok}/{sent}");
    }
}

#[test]
fn timing_offset_tolerance() {
    for &off in &[0.0, 3.5, 17.0, 60.25, 200.0] {
        let mut chan = ChannelConfig::awgn(2, 2, SNR_DB);
        chan.timing_offset = off;
        let (ok, sent) = run_with(chan, 9, 11, 8);
        assert_eq!(ok, sent, "timing offset {off}: {ok}/{sent}");
    }
}

#[test]
fn sfo_tolerance() {
    // ±20 ppm is the 802.11 oscillator budget; frames here are short
    // enough (< 10k samples) that accumulated drift stays sub-sample.
    for &ppm in &[-20.0, -5.0, 5.0, 20.0] {
        let mut chan = ChannelConfig::awgn(2, 2, SNR_DB);
        chan.sfo_ppm = ppm;
        let (ok, sent) = run_with(chan, 9, 12, 8);
        assert_eq!(ok, sent, "SFO {ppm} ppm: {ok}/{sent}");
    }
}

#[test]
fn iq_imbalance_tolerance() {
    // A few percent gain and a couple degrees of skew — typical front-end
    // numbers — must not break QPSK links.
    let mut chan = ChannelConfig::awgn(2, 2, SNR_DB);
    chan.iq_epsilon = 0.05;
    chan.iq_phi = 0.03;
    let (ok, sent) = run_with(chan, 9, 13, 10);
    assert_eq!(ok, sent, "IQ imbalance: {ok}/{sent}");
}

#[test]
fn adc_quantization_tolerance() {
    for bits in [8u32, 10, 12] {
        let mut chan = ChannelConfig::awgn(2, 2, SNR_DB);
        chan.adc_bits = Some(bits);
        let (ok, sent) = run_with(chan, 9, 14, 8);
        assert_eq!(ok, sent, "{bits}-bit ADC: {ok}/{sent}");
    }
}

#[test]
fn dc_offset_tolerance() {
    // A small DC term sits on the (null) DC subcarrier after the FFT and
    // leaks only through spectral sidelobes of the detection window.
    let mut chan = ChannelConfig::awgn(2, 2, SNR_DB);
    chan.dc_offset = mimonet_dsp::complex::C64::new(0.02, -0.015);
    let (ok, sent) = run_with(chan, 9, 15, 10);
    assert_eq!(ok, sent, "DC offset: {ok}/{sent}");
}

#[test]
fn pilot_tracking_rescues_residual_cfo() {
    // Fractional CFO close to the LTF estimator's noise floor leaves a
    // residual rotation that accumulates over a long frame; pilot tracking
    // must recover what its absence loses. Use a long payload (many
    // symbols) and moderate SNR to make the effect decisive.
    let run = |tracking: bool| {
        let mut chan = ChannelConfig::awgn(2, 2, 18.0);
        chan.cfo_norm = 0.308; // worst-case fractional residue
        let mut cfg = LinkConfig::new(11, 1200, chan);
        cfg.rx.pilot_tracking = tracking;
        let stats = LinkSim::new(cfg, 16).run(20);
        stats.per.ok()
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with > without,
        "tracking {with}/20 vs no tracking {without}/20"
    );
}

#[test]
fn fine_timing_required_under_timing_offset() {
    // With fine timing disabled, the receiver refines with the MIMO Van
    // de Beek CP metric; on a clean channel both approaches must pin the
    // window well enough for 64-QAM 5/6.
    // Note: with an identity 2×2 channel each RX antenna captures half
    // the radiated power, so "30 dB" here is ~27 dB per antenna — a
    // comfortable margin for MCS15 only when the FFT window is placed
    // correctly.
    let run = |fine: bool| {
        let mut chan = ChannelConfig::awgn(2, 2, 30.0);
        chan.timing_offset = 13.7;
        let mut cfg = LinkConfig::new(15, 400, chan);
        cfg.rx.fine_timing = fine;
        LinkSim::new(cfg, 17).run(20).per.ok()
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with >= without,
        "fine timing {with}/20 vs without {without}/20"
    );
    assert_eq!(with, 20, "fine timing must deliver everything at 30 dB");
}

#[test]
fn combined_worst_case_still_delivers_majority() {
    let mut chan = ChannelConfig::awgn(2, 2, 25.0);
    chan.cfo_norm = 0.4;
    chan.sfo_ppm = 15.0;
    chan.timing_offset = 27.3;
    chan.iq_epsilon = 0.03;
    chan.iq_phi = 0.02;
    chan.adc_bits = Some(10);
    chan.dc_offset = mimonet_dsp::complex::C64::new(0.01, 0.01);
    let (ok, sent) = run_with(chan, 9, 18, 20);
    assert!(ok * 10 >= sent * 9, "combined impairments: {ok}/{sent}");
}
