//! Flowgraph integration: the transceiver blocks running inside the
//! GNU-Radio-like runtime, on both schedulers, with messages and tags.

use mimonet::blocks::{build_link_flowgraph, frame_burst_len, ChannelBlock, RxBlock, TxBlock};
use mimonet::{RxConfig, TxConfig};
use mimonet_channel::ChannelConfig;
use mimonet_runtime::{convert, Flowgraph, Message, MessageHub, VectorSink, VectorSource};

#[test]
fn multi_frame_mimo_loopback() {
    let psdu_len = 90;
    let n_frames = 5;
    let psdus: Vec<u8> = (0..n_frames * psdu_len).map(|i| (i % 251) as u8).collect();
    let (mut fg, handle, _) = build_link_flowgraph(
        TxConfig::new(10).unwrap(),
        ChannelConfig::awgn(2, 2, 32.0),
        RxConfig::new(2),
        &psdus,
        psdu_len,
        101,
    );
    let hub = MessageHub::new();
    let frames = hub.subscribe("mimonet.frames");
    fg.run(&hub).unwrap();
    assert_eq!(handle.bytes(), psdus);
    let msgs = frames.drain();
    assert_eq!(msgs.len(), n_frames);
    for (i, m) in msgs.iter().enumerate() {
        match m {
            Message::Bytes(b) => {
                assert_eq!(b.as_slice(), &psdus[i * psdu_len..(i + 1) * psdu_len]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn threaded_scheduler_delivers_identically() {
    let psdu_len = 64;
    let psdus: Vec<u8> = (0..4 * psdu_len).map(|i| (i * 3 % 256) as u8).collect();
    let build = |seed| {
        build_link_flowgraph(
            TxConfig::new(8).unwrap(),
            ChannelConfig::awgn(2, 2, 30.0),
            RxConfig::new(2),
            &psdus,
            psdu_len,
            seed,
        )
    };
    let (mut fg1, h1, _) = build(55);
    fg1.run(&MessageHub::new()).unwrap();
    let (fg2, h2, _) = build(55);
    fg2.run_threaded(std::sync::Arc::new(MessageHub::new()))
        .unwrap();
    assert_eq!(h1.bytes(), h2.bytes(), "schedulers must agree (same seed)");
    assert_eq!(h1.bytes(), psdus);
}

#[test]
fn manual_topology_with_separate_blocks() {
    // Build the graph by hand (no helper) to exercise the block API
    // directly, SISO.
    let psdu_len = 50;
    let psdus: Vec<u8> = (0..2 * psdu_len).map(|i| i as u8).collect();
    let tx_cfg = TxConfig::new(2).unwrap();
    let burst = frame_burst_len(&tx_cfg, psdu_len);

    let mut fg = Flowgraph::new();
    let src = fg.add(VectorSource::from_bytes(&psdus));
    let tx = fg.add(TxBlock::new(tx_cfg, psdu_len));
    let chan = fg.add(ChannelBlock::new(ChannelConfig::awgn(1, 1, 27.0), 7, burst));
    let rx = fg.add(RxBlock::new(RxConfig::new(1), burst));
    let (sink, handle) = VectorSink::new();
    let sink = fg.add(sink);
    fg.connect(src, 0, tx, 0).unwrap();
    fg.connect(tx, 0, chan, 0).unwrap();
    fg.connect(chan, 0, rx, 0).unwrap();
    fg.connect(rx, 0, sink, 0).unwrap();
    fg.run(&MessageHub::new()).unwrap();
    assert_eq!(handle.bytes(), psdus);
}

#[test]
fn snr_messages_track_channel_quality() {
    let psdu_len = 60;
    let psdus = vec![0x55u8; 3 * psdu_len];
    for snr in [15.0, 30.0] {
        let (mut fg, _handle, _) = build_link_flowgraph(
            TxConfig::new(9).unwrap(),
            ChannelConfig::awgn(2, 2, snr),
            RxConfig::new(2),
            &psdus,
            psdu_len,
            202,
        );
        let hub = MessageHub::new();
        let sub = hub.subscribe("mimonet.snr");
        fg.run(&hub).unwrap();
        let estimates: Vec<f64> = sub
            .drain()
            .into_iter()
            .map(|m| match m {
                Message::F64(v) => v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(!estimates.is_empty());
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert!((mean - snr).abs() < 4.0, "target {snr}, estimated {mean}");
    }
}

#[test]
fn tx_block_emits_exact_burst_geometry() {
    let psdu_len = 40;
    let tx_cfg = TxConfig::new(8).unwrap();
    let burst = frame_burst_len(&tx_cfg, psdu_len);
    let psdus = vec![1u8; 2 * psdu_len];

    let mut fg = Flowgraph::new();
    let src = fg.add(VectorSource::from_bytes(&psdus));
    let tx = fg.add(TxBlock::new(tx_cfg, psdu_len));
    let (s0, h0) = VectorSink::new();
    let (s1, h1) = VectorSink::new();
    let s0 = fg.add(s0);
    let s1 = fg.add(s1);
    fg.connect(src, 0, tx, 0).unwrap();
    fg.connect(tx, 0, s0, 0).unwrap();
    fg.connect(tx, 1, s1, 0).unwrap();
    fg.run(&MessageHub::new()).unwrap();
    assert_eq!(h0.len(), 2 * burst);
    assert_eq!(h1.len(), 2 * burst);
    // Lead-in of each burst is silent.
    let samples = h0.complex();
    for i in 0..mimonet::blocks::LEAD_IN {
        assert_eq!(samples[i], mimonet_dsp::complex::C64::ZERO);
        assert_eq!(samples[burst + i], mimonet_dsp::complex::C64::ZERO);
    }
    let _ = convert::from_complex(&samples); // conversion round-trip sanity
}
