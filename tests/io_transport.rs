//! Transport blocks under the flowgraph scheduler: TCP and UDP
//! round-trips are bit-exact, bounded-queue drops surface in
//! `GraphTelemetry::queue_drops`, and wire faults degrade to typed
//! block errors — never panics.

use mimonet_dsp::complex::Complex64;
use mimonet_io::net::{
    TcpChunkSink, TcpChunkSource, TransportConfig, UdpChunkSink, UdpChunkSource,
};
use mimonet_io::queue::OverflowPolicy;
use mimonet_io::wire::{encode, IqChunk, WireMsg};
use mimonet_runtime::{convert, Flowgraph, MessageHub, VectorSink, VectorSource};
use std::io::Write;
use std::net::{TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tone(n: usize, f: f64) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let ph = 2.0 * std::f64::consts::PI * f * i as f64;
            Complex64::new(ph.cos() * 0.7, ph.sin() * 0.7)
        })
        .collect()
}

fn small_cfg() -> TransportConfig {
    TransportConfig {
        chunk_len: 256,
        ..TransportConfig::default()
    }
}

#[test]
fn tcp_flowgraph_round_trip_is_bit_exact() {
    let n_ant = 2;
    let streams: Vec<Vec<Complex64>> = vec![tone(2000, 0.01), tone(2000, 0.037)];
    let cfg = small_cfg();

    let (source, addr) = TcpChunkSource::listen("127.0.0.1:0", n_ant, cfg.clone()).unwrap();

    // RX graph: network source -> vector sinks.
    let mut rx_fg = Flowgraph::new();
    let src = rx_fg.add(source);
    let mut handles = Vec::new();
    for port in 0..n_ant {
        let (sink, handle) = VectorSink::new();
        let id = rx_fg.add(sink);
        rx_fg.connect(src, port, id, 0).unwrap();
        handles.push(handle);
    }

    // TX graph: vector sources -> network sink.
    let mut tx_fg = Flowgraph::new();
    let sink_id = tx_fg.add(TcpChunkSink::new(addr.to_string(), n_ant, cfg));
    for (port, s) in streams.iter().enumerate() {
        let id = tx_fg.add(VectorSource::new(convert::from_complex(s)));
        tx_fg.connect(id, 0, sink_id, port).unwrap();
    }

    let rx_thread = std::thread::spawn(move || {
        rx_fg.run_threaded(Arc::new(MessageHub::new())).unwrap();
        handles
    });
    tx_fg.run_threaded(Arc::new(MessageHub::new())).unwrap();
    let handles = rx_thread.join().unwrap();

    for (s, h) in streams.iter().zip(handles) {
        let got = h.complex();
        assert_eq!(got.len(), s.len());
        for (x, y) in s.iter().zip(&got) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}

#[test]
fn queue_overflow_drops_surface_in_graph_telemetry() {
    let cfg = TransportConfig {
        chunk_len: 64,
        queue_depth: 2,
        policy: OverflowPolicy::DropOldest,
        ..TransportConfig::default()
    };
    let (source, addr) = TcpChunkSource::listen("127.0.0.1:0", 1, cfg).unwrap();
    let stats = source.stats();

    // Push 10 chunks before the graph ever runs: the reader thread fills
    // the depth-2 queue and must evict 8.
    let mut sock = TcpStream::connect(addr).unwrap();
    for seq in 0..10u64 {
        let chunk = IqChunk {
            seq,
            samples: vec![vec![Complex64::new(seq as f64, -1.0); 64]],
        };
        sock.write_all(&encode(&WireMsg::IqChunk(chunk))).unwrap();
    }
    sock.write_all(&encode(&WireMsg::Bye)).unwrap();
    sock.flush().unwrap();
    drop(sock);

    // Wait until the reader has consumed the whole stream.
    let deadline = Instant::now() + Duration::from_secs(5);
    while stats.queue_dropped() < 8 {
        assert!(Instant::now() < deadline, "reader never drained the stream");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut fg = Flowgraph::new();
    let src = fg.add(source);
    let (sink, handle) = VectorSink::new();
    let id = fg.add(sink);
    fg.connect(src, 0, id, 0).unwrap();
    let tel = fg.instrument();
    fg.run_threaded(Arc::new(MessageHub::new())).unwrap();

    // Only the freshest 2 chunks survive DropOldest.
    assert_eq!(handle.len(), 2 * 64);
    let snap = tel.snapshot();
    let block = snap
        .blocks
        .iter()
        .find(|b| b.name == "tcp_chunk_source")
        .expect("source block telemetry");
    assert_eq!(block.queue_drops, 8, "drops must surface as a Counter");
}

#[test]
fn truncated_tcp_stream_is_a_typed_block_error() {
    let cfg = small_cfg();
    let (source, addr) = TcpChunkSource::listen("127.0.0.1:0", 1, cfg).unwrap();

    // A frame header promising more payload than ever arrives.
    let chunk = IqChunk {
        seq: 0,
        samples: vec![vec![Complex64::new(1.0, 1.0); 64]],
    };
    let frame = encode(&WireMsg::IqChunk(chunk));
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(&frame[..frame.len() / 2]).unwrap();
    sock.flush().unwrap();
    drop(sock); // cut mid-message

    let mut fg = Flowgraph::new();
    let src = fg.add(source);
    let (sink, _handle) = VectorSink::new();
    let id = fg.add(sink);
    fg.connect(src, 0, id, 0).unwrap();
    let err = fg
        .run_threaded(Arc::new(MessageHub::new()))
        .expect_err("truncated stream must fail the graph");
    let msg = err.to_string();
    assert!(
        msg.contains("transport-truncation"),
        "expected transport-truncation, got: {msg}"
    );
}

#[test]
fn corrupted_tcp_stream_is_a_typed_crc_error() {
    let cfg = small_cfg();
    let (source, addr) = TcpChunkSource::listen("127.0.0.1:0", 1, cfg).unwrap();

    let chunk = IqChunk {
        seq: 0,
        samples: vec![vec![Complex64::new(1.0, 1.0); 64]],
    };
    let mut frame = encode(&WireMsg::IqChunk(chunk));
    let mid = frame.len() / 2;
    frame[mid] ^= 0xFF; // flip payload bits: CRC must catch it
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(&frame).unwrap();
    sock.flush().unwrap();
    drop(sock);

    let mut fg = Flowgraph::new();
    let src = fg.add(source);
    let (sink, _handle) = VectorSink::new();
    let id = fg.add(sink);
    fg.connect(src, 0, id, 0).unwrap();
    let err = fg
        .run_threaded(Arc::new(MessageHub::new()))
        .expect_err("corrupted stream must fail the graph");
    let msg = err.to_string();
    assert!(
        msg.contains("transport-crc"),
        "expected transport-crc, got: {msg}"
    );
}

#[test]
fn udp_source_round_trip_and_seq_gap_accounting() {
    let cfg = TransportConfig {
        chunk_len: 128,
        ..TransportConfig::default()
    };
    let (source, addr) = UdpChunkSource::bind("127.0.0.1:0", 1, cfg).unwrap();
    let stats = source.stats();

    let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
    let payload = tone(128, 0.02);
    // seq 0, then seq 2: one datagram "lost" upstream.
    for seq in [0u64, 2] {
        let chunk = IqChunk {
            seq,
            samples: vec![payload.clone()],
        };
        sock.send_to(&encode(&WireMsg::IqChunk(chunk)), addr)
            .unwrap();
    }
    // A mangled datagram: counted, not fatal.
    sock.send_to(&[0xDE, 0xAD, 0xBE, 0xEF], addr).unwrap();
    sock.send_to(&encode(&WireMsg::Bye), addr).unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    while stats.chunks_recv() < 2 || stats.decode_errors() < 1 {
        assert!(Instant::now() < deadline, "udp reader never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut fg = Flowgraph::new();
    let src = fg.add(source);
    let (sink, handle) = VectorSink::new();
    let id = fg.add(sink);
    fg.connect(src, 0, id, 0).unwrap();
    fg.run_threaded(Arc::new(MessageHub::new())).unwrap();

    let got = handle.complex();
    assert_eq!(got.len(), 2 * 128, "both received chunks replayed");
    for (x, y) in got[..128].iter().zip(&payload) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
    assert_eq!(stats.seq_gaps(), 1, "the lost datagram is accounted");
    assert_eq!(
        stats.decode_errors(),
        1,
        "the mangled datagram is accounted"
    );
}

#[test]
fn udp_sink_streams_chunks_and_terminates_with_bye() {
    let recv = UdpSocket::bind("127.0.0.1:0").unwrap();
    recv.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let addr = recv.local_addr().unwrap();

    let cfg = TransportConfig {
        chunk_len: 100,
        ..TransportConfig::default()
    };
    let stream = tone(350, 0.013); // 3 full chunks + a 50-sample tail
    let mut fg = Flowgraph::new();
    let sink = UdpChunkSink::new(addr.to_string(), 1, cfg).unwrap();
    let sink_stats = sink.stats();
    let sink_id = fg.add(sink);
    let src = fg.add(VectorSource::new(convert::from_complex(&stream)));
    fg.connect(src, 0, sink_id, 0).unwrap();
    fg.run_threaded(Arc::new(MessageHub::new())).unwrap();

    let mut buf = vec![0u8; 65_536];
    let mut got: Vec<Complex64> = Vec::new();
    loop {
        let (n, _) = recv.recv_from(&mut buf).unwrap();
        match mimonet_io::wire::decode(&buf[..n]).unwrap().0 {
            WireMsg::IqChunk(c) => got.extend_from_slice(&c.samples[0]),
            WireMsg::Bye => break,
            other => panic!("unexpected datagram {other:?}"),
        }
    }
    assert_eq!(sink_stats.chunks_sent(), 4);
    assert_eq!(got.len(), stream.len());
    for (x, y) in stream.iter().zip(&got) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
}
