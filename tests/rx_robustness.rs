//! Receiver robustness: `receive_all` / `scan` must never panic on
//! arbitrary garbage captures — noise, DC, tones, zero-length and
//! single-sample inputs, unequal antenna lengths — and must return in
//! time proportional to the capture size (no header-driven blow-ups, no
//! infinite re-scan loops).

use mimonet::{Receiver, RxConfig};
use mimonet_dsp::complex::Complex64;
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Garbage antenna stream: seeded uniform noise with occasional bursts of
/// constant amplitude (plateaus that tease the packet detector's
/// autocorrelation the way a real STF would).
fn garbage(len: usize, seed: u64, scale: f64) -> Vec<Complex64> {
    let mut s = seed | 1;
    (0..len)
        .map(|i| {
            let plateau = splitmix64(&mut s).is_multiple_of(7);
            let unit = |s: &mut u64| (splitmix64(s) >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            if plateau {
                // Repeating value over a short run — periodic-ish energy.
                let v = 0.7 * scale * ((i / 16) % 3) as f64;
                Complex64::new(v, -v)
            } else {
                Complex64::new(scale * unit(&mut s), scale * unit(&mut s))
            }
        })
        .collect()
}

/// Wall-clock ceiling proportional to the capture size: a generous fixed
/// floor plus 1 ms per 100 samples. Garbage this small must come back
/// fast; the bound exists to catch re-scan loops that stop advancing.
fn time_bound(total_samples: usize) -> Duration {
    Duration::from_millis(2_000 + (total_samples as u64) / 100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn receive_all_survives_arbitrary_garbage(
        lens in prop::collection::vec(0usize..6_000, 1..4),
        seed in any::<u64>(),
        scale_milli in 0u32..40_000,
    ) {
        let scale = f64::from(scale_milli) / 1_000.0;
        let rx: Vec<Vec<Complex64>> = lens
            .iter()
            .enumerate()
            .map(|(a, &len)| garbage(len, seed ^ (a as u64) << 32, scale))
            .collect();
        let total: usize = lens.iter().sum();
        // Receiver sized to the actual antenna count, so the scan engages
        // instead of bailing on AntennaMismatch.
        let receiver = Receiver::new(RxConfig::new(rx.len()));
        let start = Instant::now();
        let frames = receiver.receive_all(&rx);
        let elapsed = start.elapsed();
        prop_assert!(
            elapsed < time_bound(total),
            "scan of {} samples took {:?}", total, elapsed
        );
        // Random noise must not decode into frames.
        prop_assert_eq!(frames.len(), 0);
    }

    #[test]
    fn scan_stats_survive_mismatched_antenna_counts(
        n_ant in 1usize..5,
        len in 0usize..2_000,
        seed in any::<u64>(),
    ) {
        // Receiver configured for 2 RX antennas, capture has n_ant: every
        // combination must return cleanly (mismatch ends the scan with a
        // typed error internally, never a panic).
        let rx: Vec<Vec<Complex64>> =
            (0..n_ant).map(|a| garbage(len, seed ^ a as u64, 1.0)).collect();
        let receiver = Receiver::new(RxConfig::new(2));
        let (frames, stats) = receiver.scan(&rx);
        prop_assert_eq!(frames.len(), 0);
        prop_assert_eq!(stats.frames, 0);
    }
}

#[test]
fn degenerate_captures_do_not_panic() {
    let receiver = Receiver::new(RxConfig::new(1));
    // Zero antennas, zero-length, single-sample, two-sample.
    let cases: Vec<Vec<Vec<Complex64>>> = vec![
        vec![],
        vec![vec![]],
        vec![vec![Complex64::new(1.0, -1.0)]],
        vec![vec![Complex64::ZERO; 2]],
        vec![vec![Complex64::new(f64::MAX / 4.0, 0.0); 64]],
        vec![vec![Complex64::new(f64::NAN, f64::NAN); 64]],
    ];
    for rx in &cases {
        let frames = receiver.receive_all(rx);
        assert!(frames.is_empty());
    }
    // Unequal antenna lengths with a 2-antenna receiver.
    let receiver2 = Receiver::new(RxConfig::new(2));
    let rx = vec![garbage(1_000, 9, 1.0), garbage(3, 10, 1.0)];
    assert!(receiver2.receive_all(&rx).is_empty());
}

#[test]
fn all_zero_capture_scans_in_bounded_time() {
    // A long silent capture: detection never fires; the scan must walk
    // the window and stop, not spin.
    let receiver = Receiver::new(RxConfig::new(2));
    let rx = vec![vec![Complex64::ZERO; 200_000]; 2];
    let start = Instant::now();
    let (frames, stats) = receiver.scan(&rx);
    assert!(frames.is_empty());
    assert_eq!(stats.frames, 0);
    assert!(
        start.elapsed() < time_bound(400_000),
        "silent scan took {:?}",
        start.elapsed()
    );
}
