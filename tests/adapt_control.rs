//! Property tests for `core::adapt::RateController` hysteresis edges:
//! monotone SNR sweeps must never oscillate the MCS, and the
//! stale-feedback loss fallback must converge to the most robust rate
//! instead of bouncing.

use mimonet::adapt::{RateController, SnrThresholdTable};
use proptest::prelude::*;

/// Table position of an MCS (all test MCS values come from the table).
fn pos(table: &SnrThresholdTable, mcs: u8) -> usize {
    table
        .rows()
        .iter()
        .position(|&(_, m)| m == mcs)
        .expect("controller output always comes from its table")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rising SNR with steady delivery: the selected rate must be
    /// non-decreasing (no downward blips while conditions only improve)
    /// and climb at most one table row per update.
    #[test]
    fn rising_snr_never_steps_down(
        start_centi in -500i32..4_000,
        steps in prop::collection::vec(0u32..300, 1..60),
    ) {
        let table = SnrThresholdTable::default_two_stream();
        let mut rc = RateController::new(table.clone());
        let mut snr = f64::from(start_centi) / 100.0;
        let mut prev = rc.current_mcs();
        for step in steps {
            snr += f64::from(step) / 100.0;
            let next = rc.update(true, Some(snr));
            let (p, n) = (pos(&table, prev), pos(&table, next));
            prop_assert!(n >= p, "rate fell {prev}->{next} while SNR rose to {snr:.2}");
            prop_assert!(n - p <= 1, "rate jumped {prev}->{next} in one update");
            prev = next;
        }
    }

    /// Falling SNR with steady delivery: the selected rate must be
    /// non-increasing — hysteresis margin must never convert a falling
    /// sweep into an upward blip.
    #[test]
    fn falling_snr_never_steps_up(
        start_centi in 0i32..4_500,
        steps in prop::collection::vec(0u32..300, 1..60),
    ) {
        let table = SnrThresholdTable::default_two_stream();
        let mut rc = RateController::new(table.clone());
        let mut snr = f64::from(start_centi) / 100.0;
        // Let the controller climb to its steady state for this SNR first,
        // so the sweep starts from wherever hysteresis settled.
        for _ in 0..table.rows().len() {
            rc.update(true, Some(snr));
        }
        let mut prev = rc.current_mcs();
        for step in steps {
            snr -= f64::from(step) / 100.0;
            let next = rc.update(true, Some(snr));
            prop_assert!(
                pos(&table, next) <= pos(&table, prev),
                "rate rose {prev}->{next} while SNR fell to {snr:.2}"
            );
            prev = next;
        }
    }

    /// Constant SNR must reach a fixed point: after the controller has had
    /// one update per table row to settle, further updates at the same SNR
    /// never change the rate (the hysteresis margin kills flapping even
    /// exactly at a switching threshold).
    #[test]
    fn constant_snr_reaches_a_fixed_point(
        snr_centi in -500i32..4_500,
        extra in 1usize..30,
    ) {
        let table = SnrThresholdTable::default_two_stream();
        let mut rc = RateController::new(table.clone());
        let snr = f64::from(snr_centi) / 100.0;
        for _ in 0..table.rows().len() {
            rc.update(true, Some(snr));
        }
        let settled = rc.current_mcs();
        for _ in 0..extra {
            prop_assert_eq!(
                rc.update(true, Some(snr)),
                settled,
                "rate flapped at constant {:.2} dB", snr
            );
        }
    }

    /// Stale feedback (no SNR) and persistent loss: the fallback must
    /// converge to the most robust rate within `2 * rows` failed frames,
    /// monotonically, and stay there.
    #[test]
    fn stale_feedback_loss_converges_to_floor(
        climb in 0usize..10,
        tail in 1usize..20,
    ) {
        let table = SnrThresholdTable::default_two_stream();
        let mut rc = RateController::new(table.clone());
        for _ in 0..climb {
            rc.update(true, Some(60.0));
        }
        let mut prev = rc.current_mcs();
        for _ in 0..2 * table.rows().len() {
            let next = rc.update(false, None);
            prop_assert!(
                pos(&table, next) <= pos(&table, prev),
                "loss fallback stepped up {prev}->{next}"
            );
            prev = next;
        }
        prop_assert_eq!(prev, table.lowest(), "did not reach the floor");
        for _ in 0..tail {
            prop_assert_eq!(rc.update(false, None), table.lowest());
        }
    }

    /// Alternating success/failure with stale feedback never moves the
    /// rate: a single failure is inside the `max_failures` budget, so the
    /// controller must not oscillate on it.
    #[test]
    fn isolated_losses_never_move_the_rate(
        climb in 0usize..10,
        pairs in 1usize..20,
    ) {
        let table = SnrThresholdTable::default_two_stream();
        let mut rc = RateController::new(table.clone());
        for _ in 0..climb {
            rc.update(true, Some(60.0));
        }
        let rate = rc.current_mcs();
        for _ in 0..pairs {
            rc.update(false, None);
            rc.update(true, None);
            prop_assert_eq!(rc.current_mcs(), rate, "isolated loss moved the rate");
        }
    }
}
