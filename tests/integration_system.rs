//! System-level integration: spectral occupancy of the transmit waveform,
//! closed-loop rate adaptation, and the streaming multi-frame receiver.

use mimonet::adapt::{RateController, SnrThresholdTable};
use mimonet::link::{LinkConfig, LinkSim};
use mimonet::{Receiver, RxConfig, Transmitter, TxConfig};
use mimonet_channel::{ChannelConfig, ChannelSim};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::spectrum::{power_in_band, welch_psd};

#[test]
fn tx_waveform_respects_spectral_occupancy() {
    // The 20 MHz HT waveform occupies ±28/64 of the sampling bandwidth;
    // everything outside is OFDM sidelobe leakage only.
    let tx = Transmitter::new(TxConfig::new(9).unwrap());
    let streams = tx.transmit(&vec![0xC3u8; 800]).unwrap();
    for (a, s) in streams.iter().enumerate() {
        // 256-bin segments put each subcarrier on bin 4k, leaving clear
        // guard bins around DC for the null check.
        let psd = welch_psd(s, 256);
        // Occupied band: 28/64 + transition ≈ 0.47 captures ≥ 97%.
        let inband = power_in_band(&psd, 0.47);
        assert!(inband > 0.97, "antenna {a}: in-band fraction {inband}");
        // DC null: the DC bin is well below the average occupied bin
        // (carriers sit at bins 4, 8, ..., 112 and mirrors).
        let avg_occupied: f64 = (1..=28).map(|k| psd[4 * k] + psd[256 - 4 * k]).sum::<f64>() / 56.0;
        assert!(
            psd[0] < avg_occupied * 0.2,
            "antenna {a}: DC bin {} vs avg occupied {avg_occupied}",
            psd[0]
        );
    }
}

#[test]
fn tx_guard_band_is_quiet() {
    let tx = Transmitter::new(TxConfig::new(15).unwrap());
    let streams = tx.transmit(&vec![0x11u8; 1000]).unwrap();
    let psd = welch_psd(&streams[0], 256);
    // Guard bins (beyond carrier ±28, i.e. bins 120..136 around Nyquist)
    // carry far less than an equal count of occupied bins.
    let guard: f64 = (120..=136).map(|k| psd[k]).sum();
    let occupied: f64 = (1..=17).map(|k| psd[4 * k]).sum();
    assert!(
        guard < occupied * 0.05,
        "guard power {guard} vs occupied sample {occupied}"
    );
}

#[test]
fn closed_loop_rate_adaptation_converges() {
    // Drive the controller with real link outcomes at a fixed channel SNR;
    // it must settle on an MCS that actually delivers while outrunning the
    // most robust rate.
    let snr = 20.0;
    let mut rc = RateController::new(SnrThresholdTable::default_two_stream());
    let mut delivered_payloads = 0usize;
    let mut history = Vec::new();
    for round in 0..20u64 {
        let mcs = rc.current_mcs();
        let cfg = LinkConfig::new(mcs, 500, ChannelConfig::awgn(2, 2, snr));
        let stats = LinkSim::new(cfg, 5_000 + round).run(3);
        let ok = stats.per.ok() == 3;
        if ok {
            delivered_payloads += 3;
        }
        let snr_feedback = if stats.snr_est_db.count() > 0 {
            Some(stats.snr_est_db.mean())
        } else {
            None
        };
        rc.update(ok, snr_feedback);
        history.push(mcs);
    }
    let final_mcs = *history.last().unwrap();
    // At ~17 dB effective per-antenna SNR, MCS11 (16-QAM 1/2, threshold
    // 17 dB on the estimate) is the expected operating point ±1 row.
    assert!(
        (9..=13).contains(&final_mcs),
        "settled at MCS{final_mcs}, history {history:?}"
    );
    assert!(
        final_mcs > 8,
        "must climb above the most robust rate: {history:?}"
    );
    assert!(
        delivered_payloads >= 45,
        "delivered {delivered_payloads}/60"
    );
}

#[test]
fn rate_adaptation_tracks_snr_steps() {
    // SNR drops mid-run: the controller must come back down.
    let mut rc = RateController::new(SnrThresholdTable::default_two_stream());
    for round in 0..10u64 {
        let mcs = rc.current_mcs();
        let cfg = LinkConfig::new(mcs, 300, ChannelConfig::awgn(2, 2, 32.0));
        let stats = LinkSim::new(cfg, 6_100 + round).run(2);
        rc.update(stats.per.ok() == 2, Some(stats.snr_est_db.mean()));
    }
    let high = rc.current_mcs();
    assert!(high >= 13, "high-SNR phase reached MCS{high}");
    for round in 0..6u64 {
        let mcs = rc.current_mcs();
        let cfg = LinkConfig::new(mcs, 300, ChannelConfig::awgn(2, 2, 10.0));
        let stats = LinkSim::new(cfg, 6_200 + round).run(2);
        let fb = if stats.snr_est_db.count() > 0 {
            Some(stats.snr_est_db.mean())
        } else {
            None
        };
        rc.update(stats.per.ok() == 2, fb);
    }
    let low = rc.current_mcs();
    assert!(low <= 9, "after the SNR drop: MCS{low} (was MCS{high})");
}

#[test]
fn streaming_receiver_handles_mixed_quality_capture() {
    // Three frames; the middle one is buried in a deep fade (simulated by
    // zeroing it out) — receive_all must still deliver the other two.
    let tx = Transmitter::new(TxConfig::new(8).unwrap());
    let rx = Receiver::new(RxConfig::new(2));
    let psdus: Vec<Vec<u8>> = (1..=3u8).map(|k| vec![k * 17; 80]).collect();
    let mut capture: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; 200]; 2];
    for (i, psdu) in psdus.iter().enumerate() {
        let streams = tx.transmit(psdu).unwrap();
        for (c, s) in capture.iter_mut().zip(&streams) {
            if i == 1 {
                // Deep fade: the frame vanishes.
                c.extend(vec![Complex64::ZERO; s.len()]);
            } else {
                c.extend_from_slice(s);
            }
            c.extend(vec![Complex64::ZERO; 300]);
        }
    }
    let mut sim = ChannelSim::new(ChannelConfig::awgn(2, 2, 28.0), 33);
    let (noisy, _) = sim.apply(&capture);
    let frames = rx.receive_all(&noisy);
    let payloads: Vec<&Vec<u8>> = frames.iter().map(|(_, f)| &f.psdu).collect();
    assert_eq!(payloads.len(), 2, "got {} frames", payloads.len());
    assert_eq!(payloads[0], &psdus[0]);
    assert_eq!(payloads[1], &psdus[2]);
}
