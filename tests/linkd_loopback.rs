//! `mimonet-linkd` loopback: concurrent served sessions agree
//! byte-for-byte with local runs, per-session telemetry flows back, and
//! transport faults (truncated requests, mid-session disconnects)
//! degrade to typed errors while the daemon keeps serving.

use mimonet_io::client::{ClientError, LinkClient};
use mimonet_io::linkd::LinkServer;
use mimonet_io::session::{run_session, Scheduler};
use mimonet_io::wire::{encode, read_msg, write_msg, SessionConfig, WireMsg, WIRE_VERSION};
use serde::Serialize;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn cfg(seed: u64) -> SessionConfig {
    SessionConfig {
        mcs: 8,
        payload_len: 64,
        n_frames: 3,
        snr_db: 30.0,
        seed,
    }
}

fn local_stats_json(c: &SessionConfig) -> String {
    let out = run_session(c, Scheduler::Threaded).unwrap();
    serde::json::to_string(&out.stats.serialize())
}

#[test]
fn concurrent_sessions_match_local_runs() {
    let server = LinkServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // 5 concurrent clients, each with a *different* seed: cross-session
    // corruption would make some client see another session's PSDUs.
    let n_clients = 5u64;
    let handles: Vec<_> = (0..n_clients)
        .map(|i| {
            std::thread::spawn(move || {
                let c = cfg(1000 + i);
                let mut client = LinkClient::connect(addr).unwrap();
                let served = client.run_session(&c).unwrap();
                client.close().unwrap();
                (c, served)
            })
        })
        .collect();

    for h in handles {
        let (c, served) = h.join().unwrap();
        let local = run_session(&c, Scheduler::Threaded).unwrap();
        assert_eq!(
            served.frames, local.decoded,
            "served frames must be bit-identical to the local run (seed {})",
            c.seed
        );
        assert_eq!(
            served.stats_json,
            serde::json::to_string(&local.stats.serialize()),
            "served LinkStats must match the local run (seed {})",
            c.seed
        );
        // Per-session telemetry: a real per-block snapshot, not a stub.
        assert!(served.telemetry_json.contains("mimonet_tx"));
        assert!(served.telemetry_json.contains("mimonet_rx"));
        assert!(served.telemetry_json.contains("queue_drops"));
    }

    let stats = server.shutdown();
    assert_eq!(stats.connections(), n_clients);
    assert_eq!(stats.sessions_ok(), n_clients);
    assert_eq!(stats.sessions_failed(), 0);
}

#[test]
fn one_connection_can_run_sessions_back_to_back() {
    let server = LinkServer::bind("127.0.0.1:0").unwrap();
    let mut client = LinkClient::connect(server.local_addr()).unwrap();
    let a = client.run_session(&cfg(7)).unwrap();
    let b = client.run_session(&cfg(8)).unwrap();
    let c = client.run_session(&cfg(7)).unwrap();
    client.close().unwrap();
    assert_eq!(a.frames, c.frames, "same seed, same session");
    assert_ne!(a.frames, b.frames, "different seed, different PSDUs");
    assert_eq!(a.stats_json, local_stats_json(&cfg(7)));
    assert_eq!(server.shutdown().sessions_ok(), 3);
}

#[test]
fn bad_config_is_refused_and_the_connection_survives() {
    let server = LinkServer::bind("127.0.0.1:0").unwrap();
    let mut client = LinkClient::connect(server.local_addr()).unwrap();
    let bad = SessionConfig { mcs: 99, ..cfg(1) };
    match client.run_session(&bad) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "bad-config"),
        other => panic!("expected a typed server refusal, got {other:?}"),
    }
    // Same connection still serves good sessions.
    let ok = client.run_session(&cfg(1)).unwrap();
    assert_eq!(ok.frames.len(), 3);
    client.close().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.sessions_failed(), 1);
    assert_eq!(stats.sessions_ok(), 1);
}

#[test]
fn truncated_request_is_a_typed_error_and_the_daemon_survives() {
    let server = LinkServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Handshake by hand, then send half a message and cut the stream.
    let mut sock = TcpStream::connect(addr).unwrap();
    write_msg(
        &mut sock,
        &WireMsg::Hello {
            version: WIRE_VERSION,
        },
    )
    .unwrap();
    match read_msg(&mut sock).unwrap() {
        WireMsg::Hello { version } => assert_eq!(version, WIRE_VERSION),
        other => panic!("expected Hello, got {other:?}"),
    }
    let frame = encode(&WireMsg::SessionRequest(cfg(3)));
    sock.write_all(&frame[..frame.len() / 2]).unwrap();
    sock.flush().unwrap();
    // Half-close: the server sees EOF mid-message = truncation.
    sock.shutdown(std::net::Shutdown::Write).unwrap();
    match read_msg(&mut sock) {
        Ok(WireMsg::ErrorReport { kind, .. }) => assert_eq!(kind, "transport-truncation"),
        other => panic!("expected a typed ErrorReport, got {other:?}"),
    }
    drop(sock);

    // The daemon shrugged it off and keeps serving.
    let mut client = LinkClient::connect(addr).unwrap();
    assert_eq!(client.run_session(&cfg(3)).unwrap().frames.len(), 3);
    client.close().unwrap();
    let stats = server.shutdown();
    assert!(stats.protocol_errors() >= 1);
    assert_eq!(stats.sessions_ok(), 1);
}

#[test]
fn garbage_bytes_are_a_typed_desync_and_the_daemon_survives() {
    let server = LinkServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut sock = TcpStream::connect(addr).unwrap();
    write_msg(
        &mut sock,
        &WireMsg::Hello {
            version: WIRE_VERSION,
        },
    )
    .unwrap();
    read_msg(&mut sock).unwrap();
    // 12 bytes of garbage = a full (bogus) header: bad magic.
    sock.write_all(b"GARBAGEBYTES").unwrap();
    sock.flush().unwrap();
    match read_msg(&mut sock) {
        Ok(WireMsg::ErrorReport { kind, .. }) => assert_eq!(kind, "transport-desync"),
        other => panic!("expected a typed ErrorReport, got {other:?}"),
    }
    drop(sock);

    let mut client = LinkClient::connect(addr).unwrap();
    assert_eq!(client.run_session(&cfg(5)).unwrap().frames.len(), 3);
    client.close().unwrap();
}

#[test]
fn mid_session_disconnect_never_kills_the_daemon() {
    let server = LinkServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Request a long session (32 frames streamed back), then vanish
    // before the reply: the server's writes hit a dead socket.
    {
        let mut sock = TcpStream::connect(addr).unwrap();
        write_msg(
            &mut sock,
            &WireMsg::Hello {
                version: WIRE_VERSION,
            },
        )
        .unwrap();
        read_msg(&mut sock).unwrap();
        let long = SessionConfig {
            n_frames: 32,
            payload_len: 256,
            ..cfg(9)
        };
        write_msg(&mut sock, &WireMsg::SessionRequest(long)).unwrap();
        sock.flush().unwrap();
        // Drop without reading anything back.
    }

    // The session runs and then fails (or, at worst, drains into socket
    // buffers); either way the daemon must still serve new clients.
    let stats = server.stats();
    let deadline = Instant::now() + Duration::from_secs(30);
    while stats.sessions_ok() + stats.sessions_failed() < 1 {
        assert!(
            Instant::now() < deadline,
            "abandoned session never finished"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut client = LinkClient::connect(addr).unwrap();
    assert_eq!(client.run_session(&cfg(9)).unwrap().frames.len(), 3);
    client.close().unwrap();
    let final_stats = server.shutdown();
    assert_eq!(final_stats.connections(), 2);
    assert_eq!(final_stats.sessions_started(), 2);
}
