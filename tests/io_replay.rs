//! Replay determinism — the capture acceptance criterion: a recorded 2x2
//! link replayed through `Receiver::scan` yields bit-identical PSDUs and
//! identical `LinkStats` whether the capture travels through a file or a
//! TCP loopback socket, and matches the direct in-memory scan.

use mimonet::config::RxConfig;
use mimonet::rx::Receiver;
use mimonet_dsp::complex::Complex64;
use mimonet_io::capture::{replay_scan, write_capture, CaptureReader, CaptureWriter};
use mimonet_io::session::{build_link_capture, score_scan};
use mimonet_io::wire::{CaptureMeta, SessionConfig};
use serde::Serialize;
use std::net::{TcpListener, TcpStream};

fn session() -> SessionConfig {
    SessionConfig {
        mcs: 9, // QPSK 1/2, 2 streams
        payload_len: 100,
        n_frames: 4,
        snr_db: 28.0,
        seed: 42,
    }
}

fn meta(cfg: &SessionConfig, n_ant: usize) -> CaptureMeta {
    CaptureMeta {
        n_ant: n_ant as u16,
        sample_rate_hz: mimonet_io::capture::CAPTURE_SAMPLE_RATE_HZ,
        seed: cfg.seed,
        description: "replay determinism test".into(),
    }
}

fn stats_json(stats: &mimonet::link::LinkStats) -> String {
    serde::json::to_string(&stats.serialize())
}

fn assert_bit_identical(a: &[Vec<Complex64>], b: &[Vec<Complex64>]) {
    assert_eq!(a.len(), b.len(), "antenna count");
    for (sa, sb) in a.iter().zip(b) {
        assert_eq!(sa.len(), sb.len(), "stream length");
        for (x, y) in sa.iter().zip(sb) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}

#[test]
fn file_replay_is_bit_identical_to_direct_scan() {
    let cfg = session();
    let (streams, psdus) = build_link_capture(&cfg).unwrap();
    let n_ant = streams.len();
    assert_eq!(n_ant, 2, "MCS 9 is a 2-stream rate");

    // Reference: direct in-memory scan.
    let rx = Receiver::new(RxConfig::new(n_ant));
    let (ref_frames, ref_scan) = rx.scan(&streams);
    assert!(!ref_frames.is_empty(), "clean capture must decode");
    let ref_stats = score_scan(&psdus, &ref_frames, &ref_scan);
    assert_eq!(ref_stats.per.ok(), cfg.n_frames as u64);

    // Through a capture file.
    let dir = std::env::temp_dir().join("mimonet_io_replay_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("link_2x2.iqcap");
    write_capture(&path, &meta(&cfg, n_ant), &streams).unwrap();
    let (m, frames, scan) = replay_scan(&path, RxConfig::new(n_ant)).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(m.seed, cfg.seed);
    assert_eq!(frames.len(), ref_frames.len());
    for ((off_a, fa), (off_b, fb)) in ref_frames.iter().zip(&frames) {
        assert_eq!(off_a, off_b, "detection offset must replay exactly");
        assert_eq!(fa.psdu, fb.psdu, "PSDU must be bit-identical");
    }
    let stats = score_scan(&psdus, &frames, &scan);
    assert_eq!(
        stats_json(&ref_stats),
        stats_json(&stats),
        "LinkStats must be identical through the file"
    );
}

#[test]
fn tcp_replay_is_bit_identical_to_direct_scan() {
    let cfg = session();
    let (streams, psdus) = build_link_capture(&cfg).unwrap();
    let n_ant = streams.len();
    let rx = Receiver::new(RxConfig::new(n_ant));
    let (ref_frames, ref_scan) = rx.scan(&streams);
    let ref_stats = score_scan(&psdus, &ref_frames, &ref_scan);

    // The same capture stream, but over a TCP loopback socket: the wire
    // format is transport-agnostic by construction.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let m = meta(&cfg, n_ant);
    let send_streams = streams.clone();
    let sender = std::thread::spawn(move || {
        let sock = TcpStream::connect(addr).unwrap();
        let mut w = CaptureWriter::new(sock, &m).unwrap();
        w.write_streams(&send_streams, 1000).unwrap();
        w.finish().unwrap();
    });
    let (sock, _) = listener.accept().unwrap();
    let mut r = CaptureReader::new(sock).unwrap();
    let received = r.read_streams().unwrap();
    sender.join().unwrap();

    assert_bit_identical(&streams, &received);
    let (frames, scan) = rx.scan(&received);
    assert_eq!(frames.len(), ref_frames.len());
    for ((off_a, fa), (off_b, fb)) in ref_frames.iter().zip(&frames) {
        assert_eq!(off_a, off_b);
        assert_eq!(fa.psdu, fb.psdu, "PSDU must be bit-identical over TCP");
    }
    let stats = score_scan(&psdus, &frames, &scan);
    assert_eq!(
        stats_json(&ref_stats),
        stats_json(&stats),
        "LinkStats must be identical through the socket"
    );
}

#[test]
fn truncated_capture_file_is_a_typed_error() {
    let cfg = session();
    let (streams, _psdus) = build_link_capture(&cfg).unwrap();
    let dir = std::env::temp_dir().join("mimonet_io_replay_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("torn.iqcap");
    write_capture(&path, &meta(&cfg, streams.len()), &streams).unwrap();

    // Tear off the tail (the Bye terminator and then some).
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 37]).unwrap();

    let err = replay_scan(&path, RxConfig::new(streams.len())).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        matches!(err, mimonet_io::wire::WireError::Truncated { .. }),
        "torn capture must be Truncated, got {err}"
    );
}
