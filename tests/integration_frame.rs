//! Frame-construction integration: the bit-level TX path (scramble →
//! encode → puncture → parse → interleave → map) against independent
//! reimplementations and inverse paths, plus preamble/frame geometry.

use mimonet::{Transmitter, TxConfig};
use mimonet_dsp::complex::mean_power;
use mimonet_fec::bits::bytes_to_bits;
use mimonet_fec::interleaver::Interleaver;
use mimonet_fec::puncture::{depuncture_hard, CodeRate};
use mimonet_fec::{decode_hard_unterminated, ConvEncoder, Scrambler};
use mimonet_frame::mcs::Mcs;
use mimonet_frame::preamble::{lstf_time, LSTF_LEN};
use mimonet_frame::psdu::{assemble_data_bits, Mpdu, SERVICE_BITS};

#[test]
fn coded_bits_reference_is_invertible() {
    // Transmitter::coded_bits must be exactly the depuncture→Viterbi→
    // descramble inverse of the PSDU.
    for mcs_idx in [0u8, 4, 8, 13] {
        let cfg = TxConfig::new(mcs_idx).unwrap();
        let tx = Transmitter::new(cfg.clone());
        let psdu: Vec<u8> = (0..77u8).map(|i| i.wrapping_mul(31)).collect();
        let coded = tx.coded_bits(&psdu);
        let mcs = Mcs::from_index(mcs_idx).unwrap();
        let n_sym = mcs.num_symbols(psdu.len() * 8);
        assert_eq!(coded.len(), n_sym * mcs.n_cbps(), "MCS{mcs_idx}");

        let mother_len = 2 * n_sym * mcs.n_dbps();
        let rx = depuncture_hard(&coded, mcs.code_rate, mother_len);
        let decoded = decode_hard_unterminated(&rx).unwrap();
        let got = mimonet_frame::psdu::descramble_data_bits(&decoded, psdu.len()).unwrap();
        assert_eq!(got, psdu, "MCS{mcs_idx}");
    }
}

#[test]
fn scrambled_service_prefix_reveals_seed() {
    let cfg = TxConfig {
        scrambler_seed: 0x2B,
        ..TxConfig::new(0).unwrap()
    };
    let mcs = cfg.mcs;
    let psdu = vec![0u8; 20];
    let mut bits = assemble_data_bits(&psdu, &mcs);
    mimonet_frame::psdu::scramble_data_bits(&mut bits, psdu.len(), cfg.scrambler_seed);
    let first7: [u8; 7] = bits[..7].try_into().unwrap();
    assert_eq!(mimonet_fec::scrambler::recover_seed(&first7), Some(0x2B));
}

#[test]
fn data_field_geometry_matches_mcs_table() {
    for mcs in Mcs::all() {
        for payload in [1usize, 100, 1500] {
            let psdu_bits = payload * 8;
            let bits = assemble_data_bits(&vec![0u8; payload], &mcs);
            assert_eq!(bits.len() % mcs.n_dbps(), 0, "{mcs}");
            assert_eq!(bits.len(), mcs.num_symbols(psdu_bits) * mcs.n_dbps());
            assert_eq!(&bits[..SERVICE_BITS], &[0u8; 16]);
            assert_eq!(
                &bits[SERVICE_BITS..SERVICE_BITS + 16],
                &bytes_to_bits(&[0u8; 2])[..]
            );
        }
    }
}

#[test]
fn interleaver_and_parser_compose_losslessly_per_symbol() {
    // One OFDM symbol of coded bits through parse → interleave →
    // deinterleave → deparse must be the identity, for every 2-stream MCS.
    for idx in 8..16u8 {
        let mcs = Mcs::from_index(idx).unwrap();
        let bits: Vec<u8> = (0..mcs.n_cbps()).map(|i| ((i * 13) % 2) as u8).collect();
        let parsed = mimonet::tx::parse_streams(&bits, 2, mcs.n_bpsc());
        let ils: Vec<Interleaver> = (0..2)
            .map(|s| Interleaver::ht(mcs.n_cbpss(), mcs.n_bpsc(), s, 2))
            .collect();
        let soft: Vec<Vec<f64>> = parsed
            .iter()
            .enumerate()
            .map(|(s, b)| {
                let inter = ils[s].interleave(b);
                let as_llr: Vec<f64> = inter
                    .iter()
                    .map(|&x| if x == 0 { 1.0 } else { -1.0 })
                    .collect();
                ils[s].deinterleave_soft(&as_llr)
            })
            .collect();
        let merged = mimonet::tx::deparse_streams_soft(&soft, mcs.n_bpsc());
        let hard: Vec<u8> = merged.iter().map(|&l| u8::from(l < 0.0)).collect();
        assert_eq!(hard, bits, "MCS{idx}");
    }
}

#[test]
fn full_frame_waveform_properties() {
    let tx = Transmitter::new(TxConfig::new(9).unwrap());
    let psdu = Mpdu::data([1; 6], [2; 6], 0, vec![0x3C; 333]).to_psdu();
    let streams = tx.transmit(&psdu).unwrap();
    assert_eq!(streams.len(), 2);
    // The two antennas radiate equal average power (symmetric CSD design).
    let p0 = mean_power(&streams[0]);
    let p1 = mean_power(&streams[1]);
    assert!((p0 - p1).abs() / p0 < 0.05, "antenna powers {p0} vs {p1}");
    // STF region of antenna 0 equals the reference STF scaled by 1/sqrt(2).
    let reference = lstf_time(0, 2);
    for i in 0..LSTF_LEN {
        assert!(streams[0][i].dist(reference[i].scale(1.0 / 2f64.sqrt())) < 1e-9);
    }
    // The frame has no silent gaps (every 80-sample window carries power).
    for (w, win) in streams[0].chunks(80).enumerate() {
        assert!(mean_power(win) > 0.05, "silent window {w}");
    }
}

#[test]
fn mpdu_roundtrip_through_psdu() {
    let mpdu = Mpdu::data([0xAA; 6], [0xBB; 6], 77, b"integration payload".to_vec());
    let psdu = mpdu.to_psdu();
    let back = Mpdu::from_psdu(&psdu).unwrap();
    assert_eq!(back, mpdu);
    assert_eq!(back.header.seq, 77);
}

#[test]
fn scrambler_whitens_long_runs() {
    // A pathological all-zero payload must still produce a roughly
    // balanced coded bit stream (the scrambler's whole job).
    let tx = Transmitter::new(TxConfig::new(0).unwrap());
    let coded = tx.coded_bits(&vec![0u8; 500]);
    let ones = coded.iter().filter(|&&b| b == 1).count();
    let ratio = ones as f64 / coded.len() as f64;
    assert!((0.4..0.6).contains(&ratio), "ones ratio {ratio}");
}

#[test]
fn conv_plus_scrambler_pipeline_is_deterministic() {
    let mut s1 = Scrambler::new(0x33);
    let mut s2 = Scrambler::new(0x33);
    let data: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
    let a = ConvEncoder::new().encode(&s1.scramble(&data));
    let b = ConvEncoder::new().encode(&s2.scramble(&data));
    assert_eq!(a, b);
}

#[test]
fn all_code_rates_reachable_from_mcs_table() {
    use std::collections::HashSet;
    let rates: HashSet<CodeRate> = Mcs::all().iter().map(|m| m.code_rate).collect();
    assert_eq!(
        rates.len(),
        4,
        "MCS table must exercise all four code rates"
    );
}
