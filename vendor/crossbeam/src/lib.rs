//! Offline shim for the `crossbeam::channel` subset the flowgraph runtime
//! uses, layered over `std::sync::mpsc`.
//!
//! Semantics match crossbeam for the operations exposed here: `unbounded`
//! never blocks the sender, `bounded(n)` applies backpressure at capacity
//! `n`, and receive errors distinguish "empty" from "disconnected". The
//! crossbeam niceties the runtime does not use (select!, Receiver cloning,
//! zero-allocation wakeups) are intentionally absent.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// Sending half of a channel (unbounded or bounded).
    pub enum Sender<T> {
        /// From [`unbounded`].
        Unbounded(mpsc::Sender<T>),
        /// From [`bounded`]; `send` blocks at capacity.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Delivers `msg`, blocking on a full bounded channel; errors only
        /// when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(msg),
                Sender::Bounded(s) => s.send(msg),
            }
        }

        /// Non-blocking send: `Err(Full)` instead of blocking on a full
        /// bounded channel (unbounded channels are never full),
        /// `Err(Disconnected)` when every receiver is gone. Lets a sender
        /// interleave backpressure waits with cancellation checks.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match self {
                Sender::Unbounded(s) => s
                    .send(msg)
                    .map_err(|SendError(m)| TrySendError::Disconnected(m)),
                Sender::Bounded(s) => s.try_send(msg),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Creates a channel that blocks senders beyond `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_and_errors() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a recv frees a slot
                "sent"
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(t.join().unwrap(), "sent");
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Disconnected);
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
            let (utx, urx) = unbounded();
            utx.try_send(7).unwrap(); // unbounded is never Full
            assert_eq!(urx.recv().unwrap(), 7);
            drop(urx);
            assert!(matches!(
                utx.try_send(8),
                Err(TrySendError::Disconnected(8))
            ));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(10).unwrap();
            tx2.send(20).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort();
            assert_eq!(got, vec![10, 20]);
        }
    }
}
