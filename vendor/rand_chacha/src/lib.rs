//! Offline shim for `rand_chacha`: a genuine ChaCha8 block cipher run in
//! counter mode as a CSPRNG-grade deterministic generator.
//!
//! Only [`ChaCha8Rng`] is provided — the one type the workspace uses. The
//! keystream is real ChaCha (RFC 8439 quarter-round, 8 double-rounds), so
//! statistical quality is beyond reproach for Monte-Carlo work; byte
//! streams are *not* guaranteed to match upstream `rand_chacha` (word
//! serialization order differs), which nothing in this repo relies on.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha8 deterministic random-number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constants + counter/nonce layout, per RFC 8439.
    initial: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.initial;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, &init) in working.iter_mut().zip(&self.initial) {
            *w = w.wrapping_add(init);
        }
        self.block = working;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.initial[12] as u64 | (self.initial[13] as u64) << 32).wrapping_add(1);
        self.initial[12] = counter as u32;
        self.initial[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut initial = [0u32; 16];
        // "expand 32-byte k" constants.
        initial[0] = 0x6170_7865;
        initial[1] = 0x3320_646E;
        initial[2] = 0x7962_2D32;
        initial[3] = 0x6B20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            initial[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter and nonce start at zero.
        Self {
            initial,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn counter_advances_across_blocks() {
        // 16 words per block; draw 40 words and check no 16-word period.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let words: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        assert_ne!(&words[..16], &words[16..32]);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chacha_quarter_round_vector() {
        // RFC 8439 §2.1.1 test vector.
        let mut st = [0u32; 16];
        st[0] = 0x1111_1111;
        st[1] = 0x0102_0304;
        st[2] = 0x9b8d_6f43;
        st[3] = 0x0123_4567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a_92f4);
        assert_eq!(st[1], 0xcb1c_f8ce);
        assert_eq!(st[2], 0x4581_472e);
        assert_eq!(st[3], 0x5881_c4bb);
    }
}
