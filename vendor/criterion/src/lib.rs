//! Offline mini-criterion: enough of the Criterion 0.5 API to compile and
//! run this workspace's `[[bench]]` targets without crates.io access.
//!
//! Measurement is simple wall-clock timing: each benchmark is warmed up,
//! then run for a fixed number of timed batches, reporting median
//! time/iteration and derived throughput. No statistics engine, plots, or
//! baseline comparisons — results print to stdout in a stable format.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: a function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    /// Measured median time per iteration, filled by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: target ~5 ms per batch.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let batch = ((5_000_000.0 / once.as_nanos() as f64) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(15);
        for _ in 0..15 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn report(id: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.2} Melem/s", n as f64 / ns * 1e3),
        Throughput::Bytes(n) => format!("  {:.2} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64),
    });
    println!(
        "{id:<60} {:>12}/iter{}",
        human_time(ns),
        rate.unwrap_or_default()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; sampling here is fixed-cost.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, mut f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            b.ns_per_iter,
            self.throughput,
        );
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.name),
            b.ns_per_iter,
            self.throughput,
        );
    }

    /// Ends the group (printing is immediate; this is a no-op).
    pub fn finish(self) {}
}

/// Conversion of the various id forms `bench_function` accepts.
pub trait IntoBenchId {
    /// Renders the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, mut f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&id.into_id(), b.ns_per_iter, None);
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(64));
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("param", 64), &64usize, |b, &n| {
            b.iter(|| (0..n as u64).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(500.0).ends_with("ns"));
        assert!(human_time(5e4).ends_with("µs"));
        assert!(human_time(5e7).ends_with("ms"));
        assert!(human_time(5e9).ends_with("s"));
    }
}
