//! Offline shim for the `parking_lot` subset the runtime uses: a `Mutex`
//! whose `lock()` returns the guard directly (no `Result`), implemented
//! over `std::sync::Mutex` with poison recovery — matching parking_lot's
//! no-poisoning semantics.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning (a panicked holder
    /// does not permanently wedge the lock, as in parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
