//! Offline mini-serde: the serialization surface mimonet needs, without
//! the real serde's proc-macro derive (the build environment has no
//! crates.io access, so `syn`/`quote` are unavailable).
//!
//! Types implement [`Serialize`] by producing a [`Value`] tree; the
//! [`json`] module renders that tree as canonical JSON text. Rendering is
//! fully deterministic — object keys keep insertion order and floats use
//! Rust's shortest-roundtrip formatting — which the sweep engine's
//! bit-identical-across-threads guarantee relies on.

use std::collections::BTreeMap;

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` (also the rendering of non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for an array of serializable items.
    pub fn array<T: Serialize>(items: impl IntoIterator<Item = T>) -> Value {
        Value::Array(items.into_iter().map(|v| v.serialize()).collect())
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Produces the value tree for this object.
    fn serialize(&self) -> Value;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(impl Serialize for $t {
        fn serialize(&self) -> Value { Value::U64(*self as u64) }
    })*};
}
macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(impl Serialize for $t {
        fn serialize(&self) -> Value { Value::I64(*self as i64) }
    })*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

/// JSON text rendering of the [`Value`] model.
pub mod json {
    use super::{Serialize, Value};
    use std::fmt::Write;

    /// Serializes any [`Serialize`] type to compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.serialize(), None, 0);
        out
    }

    /// Serializes to human-friendly two-space-indented JSON.
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.serialize(), Some(2), 0);
        out
    }

    fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(f) => write_f64(out, *f),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_value(out, item, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, indent, depth);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, item)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, item, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// JSON has no NaN/Infinity; map them to null (serde_json behavior).
    fn write_f64(out: &mut String, f: f64) {
        if !f.is_finite() {
            out.push_str("null");
        } else if f == f.trunc() && f.abs() < 1e15 {
            // Integral floats as "x.0" so the value reads back as float.
            let _ = write!(out, "{f:.1}");
        } else {
            // Shortest representation that round-trips the exact bits.
            let _ = write!(out, "{f}");
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(json::to_string(&42u64), "42");
        assert_eq!(json::to_string(&-3i32), "-3");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&2.0f64), "2.0");
        assert_eq!(json::to_string("hi \"there\"\n"), "\"hi \\\"there\\\"\\n\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string(&f64::INFINITY), "null");
    }

    #[test]
    fn collections_render() {
        let v = vec![1u64, 2, 3];
        assert_eq!(json::to_string(&v), "[1,2,3]");
        let obj = Value::object([("a", Value::U64(1)), ("b", Value::Array(vec![]))]);
        assert_eq!(json::to_string(&obj), "{\"a\":1,\"b\":[]}");
    }

    #[test]
    fn option_renders_null() {
        let none: Option<u64> = None;
        assert_eq!(json::to_string(&none), "null");
        assert_eq!(json::to_string(&Some(7u64)), "7");
    }

    #[test]
    fn float_roundtrip_precision() {
        let x = 0.123_456_789_012_345_68_f64;
        let s = json::to_string(&x);
        assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn pretty_is_indented_and_reparses_identically() {
        let obj = Value::object([
            (
                "series",
                Value::Array(vec![Value::F64(1.0), Value::F64(2.5)]),
            ),
            ("name", Value::Str("fig".into())),
        ]);
        let pretty = json::to_string_pretty(&obj);
        assert!(pretty.contains("\n  \"series\""));
        // No string in this tree contains whitespace, so stripping all
        // whitespace must recover the compact form exactly.
        let stripped: String = pretty.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(stripped, json::to_string(&obj));
    }

    #[test]
    fn deterministic_output() {
        let obj = Value::object([("z", Value::F64(3.25)), ("a", Value::U64(1))]);
        assert_eq!(json::to_string(&obj), json::to_string(&obj.clone()));
        // Insertion order preserved, not sorted.
        assert_eq!(json::to_string(&obj), "{\"z\":3.25,\"a\":1}");
    }
}
