//! Offline mini-serde: the serialization surface mimonet needs, without
//! the real serde's proc-macro derive (the build environment has no
//! crates.io access, so `syn`/`quote` are unavailable).
//!
//! Types implement [`Serialize`] by producing a [`Value`] tree; the
//! [`json`] module renders that tree as canonical JSON text. Rendering is
//! fully deterministic — object keys keep insertion order and floats use
//! Rust's shortest-roundtrip formatting — which the sweep engine's
//! bit-identical-across-threads guarantee relies on.

use std::collections::BTreeMap;

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` (also the rendering of non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for an array of serializable items.
    pub fn array<T: Serialize>(items: impl IntoIterator<Item = T>) -> Value {
        Value::Array(items.into_iter().map(|v| v.serialize()).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer (`U64`, or a non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a float — integers widen (TOML/JSON writers are free
    /// to write `30` where a schema means `30.0`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Produces the value tree for this object.
    fn serialize(&self) -> Value;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(impl Serialize for $t {
        fn serialize(&self) -> Value { Value::U64(*self as u64) }
    })*};
}
macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(impl Serialize for $t {
        fn serialize(&self) -> Value { Value::I64(*self as i64) }
    })*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

/// JSON text rendering of the [`Value`] model.
pub mod json {
    use super::{Serialize, Value};
    use std::fmt::Write;

    /// Serializes any [`Serialize`] type to compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.serialize(), None, 0);
        out
    }

    /// Serializes to human-friendly two-space-indented JSON.
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.serialize(), Some(2), 0);
        out
    }

    fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(f) => write_f64(out, *f),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_value(out, item, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, indent, depth);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, item)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, item, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// JSON has no NaN/Infinity; map them to null (serde_json behavior).
    fn write_f64(out: &mut String, f: f64) {
        if !f.is_finite() {
            out.push_str("null");
        } else if f == f.trunc() && f.abs() < 1e15 {
            // Integral floats as "x.0" so the value reads back as float.
            let _ = write!(out, "{f:.1}");
        } else {
            // Shortest representation that round-trips the exact bits.
            let _ = write!(out, "{f}");
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// A JSON parse failure, with a byte offset into the input.
    #[derive(Clone, Debug, PartialEq)]
    pub struct ParseError {
        /// What went wrong.
        pub message: String,
        /// Byte offset where it went wrong.
        pub offset: usize,
    }

    impl std::fmt::Display for ParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "JSON parse error at byte {}: {}",
                self.offset, self.message
            )
        }
    }

    impl std::error::Error for ParseError {}

    /// Parses JSON text into a [`Value`] tree. Object key order is
    /// preserved (insertion order), matching what [`to_string`] emits, so
    /// `from_str(to_string(v)) == v` for integer/string/bool trees and
    /// value-equal for float trees.
    pub fn from_str(input: &str) -> Result<Value, ParseError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(input, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing characters after value", pos));
        }
        Ok(value)
    }

    fn err(message: &str, offset: usize) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset,
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(err("unexpected end of input", *pos)),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(parse_string(input, bytes, pos)?)),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(input, bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(err("expected ',' or ']' in array", *pos)),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut pairs = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(input, bytes, pos)?;
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return Err(err("expected ':' after object key", *pos));
                    }
                    *pos += 1;
                    let value = parse_value(input, bytes, pos)?;
                    pairs.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(err("expected ',' or '}' in object", *pos)),
                    }
                }
            }
            Some(_) => parse_number(input, bytes, pos),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, ParseError> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(err("invalid literal", *pos))
        }
    }

    fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected string", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(err("unterminated string", *pos)),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = input
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| err("truncated \\u escape", *pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err("invalid \\u escape", *pos))?;
                            // Surrogate pairs are not needed for config
                            // files; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            *pos += 4;
                        }
                        _ => return Err(err("invalid escape", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &input[*pos..];
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = &input[start..*pos];
        if text.is_empty() || text == "-" {
            return Err(err("expected number", start));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| err("invalid number", start))
    }
}

/// A TOML-subset parser producing the same [`Value`] model as [`json`].
///
/// Supported: `[table]` / `[a.b]` headers, `[[array-of-tables]]`, bare and
/// `"quoted"` keys, dotted keys (`a.b = 1`), basic `"strings"` with the
/// JSON escape set, integers, floats, booleans, homogeneous-or-not inline
/// arrays `[1, 2, 3]` (with trailing commas), inline tables
/// `{ a = 1, b = 2 }`, and `#` comments. Unsupported (an error, not a
/// silent skip): multi-line strings, literal `'strings'`, and datetimes —
/// scenario files need none of them.
pub mod toml {
    use super::Value;

    /// A TOML parse failure, with a 1-based line number.
    #[derive(Clone, Debug, PartialEq)]
    pub struct ParseError {
        /// What went wrong.
        pub message: String,
        /// 1-based line where it went wrong.
        pub line: usize,
    }

    impl std::fmt::Display for ParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "TOML parse error on line {}: {}",
                self.line, self.message
            )
        }
    }

    impl std::error::Error for ParseError {}

    fn err(message: impl Into<String>, line: usize) -> ParseError {
        ParseError {
            message: message.into(),
            line,
        }
    }

    /// Parses TOML text into a [`Value::Object`] tree. Key order follows
    /// document order, matching the [`super::json`] model's determinism.
    pub fn from_str(input: &str) -> Result<Value, ParseError> {
        let mut root = Value::Object(Vec::new());
        // Path of the table subsequent `key = value` lines land in.
        let mut current: Vec<String> = Vec::new();
        for (i, raw) in input.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(path_text) = line
                .strip_prefix("[[")
                .and_then(|rest| rest.strip_suffix("]]"))
            {
                let path = parse_key_path(path_text, line_no)?;
                push_array_table(&mut root, &path, line_no)?;
                current = path;
            } else if let Some(path_text) = line
                .strip_prefix('[')
                .and_then(|rest| rest.strip_suffix(']'))
            {
                let path = parse_key_path(path_text, line_no)?;
                ensure_table(&mut root, &path, line_no)?;
                current = path;
            } else {
                let eq = line
                    .find('=')
                    .ok_or_else(|| err("expected 'key = value'", line_no))?;
                let key_path = parse_key_path(&line[..eq], line_no)?;
                let (value, rest) = parse_value(line[eq + 1..].trim(), line_no)?;
                if !rest.trim().is_empty() {
                    return Err(err("trailing characters after value", line_no));
                }
                let mut full = current.clone();
                full.extend(key_path);
                insert(&mut root, &full, value, line_no)?;
            }
        }
        Ok(root)
    }

    /// Strips a `#` comment, respecting `"` strings.
    fn strip_comment(line: &str) -> &str {
        let mut in_str = false;
        let mut escaped = false;
        for (i, c) in line.char_indices() {
            match c {
                '\\' if in_str && !escaped => {
                    escaped = true;
                    continue;
                }
                '"' if !escaped => in_str = !in_str,
                '#' if !in_str => return &line[..i],
                _ => {}
            }
            escaped = false;
        }
        line
    }

    fn parse_key_path(text: &str, line: usize) -> Result<Vec<String>, ParseError> {
        let mut path = Vec::new();
        for part in text.split('.') {
            let part = part.trim();
            let key = if let Some(q) = part.strip_prefix('"').and_then(|p| p.strip_suffix('"')) {
                q.to_string()
            } else {
                if part.is_empty()
                    || !part
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    return Err(err(format!("invalid key {part:?}"), line));
                }
                part.to_string()
            };
            path.push(key);
        }
        Ok(path)
    }

    /// Navigates to (creating as needed) the object at `path`; the last
    /// element of a `[[...]]` array is entered, matching TOML semantics.
    fn navigate<'a>(
        root: &'a mut Value,
        path: &[String],
        line: usize,
    ) -> Result<&'a mut Value, ParseError> {
        let mut node = root;
        for key in path {
            // Enter the newest element of an array of tables.
            if let Value::Array(items) = node {
                node = items
                    .last_mut()
                    .ok_or_else(|| err("internal: empty table array", line))?;
            }
            let Value::Object(pairs) = node else {
                return Err(err(format!("key {key:?} is not a table"), line));
            };
            if !pairs.iter().any(|(k, _)| k == key) {
                pairs.push((key.clone(), Value::Object(Vec::new())));
            }
            let idx = pairs.iter().position(|(k, _)| k == key).expect("present");
            node = &mut pairs[idx].1;
        }
        if let Value::Array(items) = node {
            node = items
                .last_mut()
                .ok_or_else(|| err("internal: empty table array", line))?;
        }
        Ok(node)
    }

    fn ensure_table(root: &mut Value, path: &[String], line: usize) -> Result<(), ParseError> {
        let node = navigate(root, path, line)?;
        if !matches!(node, Value::Object(_)) {
            return Err(err("table header redefines a value", line));
        }
        Ok(())
    }

    fn push_array_table(root: &mut Value, path: &[String], line: usize) -> Result<(), ParseError> {
        let (parent, last) = path
            .split_last()
            .map(|(l, p)| (p, l))
            .ok_or_else(|| err("empty [[table]] name", line))?;
        let node = navigate(root, parent, line)?;
        let Value::Object(pairs) = node else {
            return Err(err("[[table]] parent is not a table", line));
        };
        match pairs.iter_mut().find(|(k, _)| k == last) {
            Some((_, Value::Array(items))) => items.push(Value::Object(Vec::new())),
            Some((_, Value::Object(obj))) if obj.is_empty() => {
                // A bare `[x]` header (or navigation) created an empty
                // table first; promote it to an array of tables.
                pairs.retain(|(k, _)| k != last);
                pairs.push((last.clone(), Value::Array(vec![Value::Object(Vec::new())])));
            }
            Some(_) => return Err(err("[[table]] redefines a non-array key", line)),
            None => pairs.push((last.clone(), Value::Array(vec![Value::Object(Vec::new())]))),
        }
        Ok(())
    }

    fn insert(
        root: &mut Value,
        path: &[String],
        value: Value,
        line: usize,
    ) -> Result<(), ParseError> {
        let (last, parent) = path.split_last().ok_or_else(|| err("empty key", line))?;
        let node = navigate(root, parent, line)?;
        let Value::Object(pairs) = node else {
            return Err(err("assignment target is not a table", line));
        };
        if pairs.iter().any(|(k, _)| k == last) {
            return Err(err(format!("duplicate key {last:?}"), line));
        }
        pairs.push((last.clone(), value));
        Ok(())
    }

    /// Parses one value from the front of `text`; returns it and the
    /// unconsumed remainder.
    fn parse_value(text: &str, line: usize) -> Result<(Value, &str), ParseError> {
        let text = text.trim_start();
        if let Some(rest) = text.strip_prefix("true") {
            return Ok((Value::Bool(true), rest));
        }
        if let Some(rest) = text.strip_prefix("false") {
            return Ok((Value::Bool(false), rest));
        }
        if text.starts_with('"') {
            return parse_string(text, line);
        }
        if text.starts_with('\'') {
            return Err(err("literal 'strings' are not supported", line));
        }
        if let Some(mut rest) = text.strip_prefix('[') {
            let mut items = Vec::new();
            loop {
                rest = rest.trim_start();
                if let Some(after) = rest.strip_prefix(']') {
                    return Ok((Value::Array(items), after));
                }
                if rest.is_empty() {
                    return Err(err("unterminated array", line));
                }
                let (item, after) = parse_value(rest, line)?;
                items.push(item);
                rest = after.trim_start();
                if let Some(after) = rest.strip_prefix(',') {
                    rest = after;
                } else if !rest.starts_with(']') && !rest.is_empty() {
                    return Err(err("expected ',' or ']' in array", line));
                }
            }
        }
        if let Some(mut rest) = text.strip_prefix('{') {
            let mut pairs = Vec::new();
            loop {
                rest = rest.trim_start();
                if let Some(after) = rest.strip_prefix('}') {
                    return Ok((Value::Object(pairs), after));
                }
                let eq = rest
                    .find('=')
                    .ok_or_else(|| err("expected 'key = value' in inline table", line))?;
                let keys = parse_key_path(&rest[..eq], line)?;
                if keys.len() != 1 {
                    return Err(err("dotted keys unsupported in inline tables", line));
                }
                let (value, after) = parse_value(rest[eq + 1..].trim_start(), line)?;
                pairs.push((keys.into_iter().next().expect("one key"), value));
                rest = after.trim_start();
                if let Some(after) = rest.strip_prefix(',') {
                    rest = after;
                } else if !rest.starts_with('}') {
                    return Err(err("expected ',' or '}' in inline table", line));
                }
            }
        }
        parse_number(text, line)
    }

    fn parse_string(text: &str, line: usize) -> Result<(Value, &str), ParseError> {
        let bytes = text.as_bytes();
        debug_assert_eq!(bytes[0], b'"');
        let mut out = String::new();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => return Ok((Value::Str(out), &text[i + 1..])),
                b'\\' => {
                    i += 1;
                    match bytes.get(i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(err("invalid string escape", line)),
                    }
                    i += 1;
                }
                _ => {
                    let c = text[i..].chars().next().expect("non-empty");
                    out.push(c);
                    i += c.len_utf8();
                }
            }
        }
        Err(err("unterminated string", line))
    }

    fn parse_number(text: &str, line: usize) -> Result<(Value, &str), ParseError> {
        let end = text
            .find(|c: char| !matches!(c, '0'..='9' | '+' | '-' | '.' | 'e' | 'E' | '_'))
            .unwrap_or(text.len());
        let (token, rest) = text.split_at(end);
        let cleaned: String = token.chars().filter(|&c| c != '_').collect();
        if cleaned.is_empty() {
            return Err(err(format!("expected a value, found {text:?}"), line));
        }
        if !cleaned.contains(['.', 'e', 'E']) {
            if let Ok(n) = cleaned.parse::<u64>() {
                return Ok((Value::U64(n), rest));
            }
            if let Ok(n) = cleaned.parse::<i64>() {
                return Ok((Value::I64(n), rest));
            }
        }
        cleaned
            .parse::<f64>()
            .map(|f| (Value::F64(f), rest))
            .map_err(|_| err(format!("invalid number {token:?}"), line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(json::to_string(&42u64), "42");
        assert_eq!(json::to_string(&-3i32), "-3");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&2.0f64), "2.0");
        assert_eq!(json::to_string("hi \"there\"\n"), "\"hi \\\"there\\\"\\n\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string(&f64::INFINITY), "null");
    }

    #[test]
    fn collections_render() {
        let v = vec![1u64, 2, 3];
        assert_eq!(json::to_string(&v), "[1,2,3]");
        let obj = Value::object([("a", Value::U64(1)), ("b", Value::Array(vec![]))]);
        assert_eq!(json::to_string(&obj), "{\"a\":1,\"b\":[]}");
    }

    #[test]
    fn option_renders_null() {
        let none: Option<u64> = None;
        assert_eq!(json::to_string(&none), "null");
        assert_eq!(json::to_string(&Some(7u64)), "7");
    }

    #[test]
    fn float_roundtrip_precision() {
        let x = 0.123_456_789_012_345_68_f64;
        let s = json::to_string(&x);
        assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn pretty_is_indented_and_reparses_identically() {
        let obj = Value::object([
            (
                "series",
                Value::Array(vec![Value::F64(1.0), Value::F64(2.5)]),
            ),
            ("name", Value::Str("fig".into())),
        ]);
        let pretty = json::to_string_pretty(&obj);
        assert!(pretty.contains("\n  \"series\""));
        // No string in this tree contains whitespace, so stripping all
        // whitespace must recover the compact form exactly.
        let stripped: String = pretty.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(stripped, json::to_string(&obj));
    }

    #[test]
    fn deterministic_output() {
        let obj = Value::object([("z", Value::F64(3.25)), ("a", Value::U64(1))]);
        assert_eq!(json::to_string(&obj), json::to_string(&obj.clone()));
        // Insertion order preserved, not sorted.
        assert_eq!(json::to_string(&obj), "{\"z\":3.25,\"a\":1}");
    }

    #[test]
    fn json_parses_and_roundtrips() {
        let text = r#"{"name":"duel","links":[{"snr_db":22.5,"mcs":8,"up":true},
                       {"snr_db":-3,"mcs":9,"up":false}],"note":"a\"b\n","none":null}"#;
        let v = json::from_str(text).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("duel"));
        let links = v.get("links").and_then(Value::as_array).unwrap();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].get("snr_db").and_then(Value::as_f64), Some(22.5));
        assert_eq!(links[1].get("snr_db").and_then(Value::as_f64), Some(-3.0));
        assert_eq!(links[0].get("mcs").and_then(Value::as_u64), Some(8));
        assert_eq!(links[1].get("up").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("note").and_then(Value::as_str), Some("a\"b\n"));
        assert_eq!(v.get("none"), Some(&Value::Null));
        // Round trip: parse(render(v)) == v.
        assert_eq!(json::from_str(&json::to_string(&v)).unwrap(), v);
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(json::from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn toml_parses_tables_and_arrays_of_tables() {
        let text = r#"
            # scenario header
            name = "duel"          # trailing comment
            seed = 7
            rounds = 40
            snr = 22.5

            [interference]
            model = "burst"
            coupling_db = -12.5

            [[links]]
            name = "a"
            mcs = 8
            mobility = [ [0, 30.0], [20, 12.0] ]

            [[links]]
            name = "b"
            adapt = { enabled = true, start_mcs = 8 }
        "#;
        let v = toml::from_str(text).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("duel"));
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("snr").and_then(Value::as_f64), Some(22.5));
        let interf = v.get("interference").unwrap();
        assert_eq!(interf.get("model").and_then(Value::as_str), Some("burst"));
        assert_eq!(
            interf.get("coupling_db").and_then(Value::as_f64),
            Some(-12.5)
        );
        let links = v.get("links").and_then(Value::as_array).unwrap();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].get("name").and_then(Value::as_str), Some("a"));
        let mob = links[0].get("mobility").and_then(Value::as_array).unwrap();
        assert_eq!(mob[1].as_array().unwrap()[1].as_f64(), Some(12.0));
        let adapt = links[1].get("adapt").unwrap();
        assert_eq!(adapt.get("enabled").and_then(Value::as_bool), Some(true));
        assert_eq!(adapt.get("start_mcs").and_then(Value::as_u64), Some(8));
    }

    #[test]
    fn toml_dotted_and_quoted_keys() {
        let v = toml::from_str("a.b = 1\n\"weird key\" = \"x\"\n[c.d]\ne = 2\n").unwrap();
        assert_eq!(
            v.get("a").unwrap().get("b").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(v.get("weird key").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("c")
                .unwrap()
                .get("d")
                .unwrap()
                .get("e")
                .and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn toml_rejects_malformed_input() {
        for bad in [
            "key",                // no '='
            "a = 1\na = 2",       // duplicate key
            "a = 'literal'",      // literal strings unsupported
            "a = \"unterminated", // unterminated string
            "a = [1, 2",          // unterminated array
            "a = 1 trailing",     // junk after value
            "[t]\n[t.x]\n[[t]]",  // [[..]] redefining a populated table
        ] {
            assert!(toml::from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn value_accessors() {
        let v = Value::object([("n", Value::I64(3)), ("f", Value::F64(0.5))]);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_object().unwrap().len(), 2);
        assert_eq!(Value::U64(1).get("x"), None);
    }
}
