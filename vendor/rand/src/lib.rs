//! Offline shim for the subset of `rand` 0.8 that mimonet uses.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors a minimal, API-compatible implementation of the
//! pieces it actually calls: [`RngCore`], [`SeedableRng`] (including the
//! SplitMix64-based `seed_from_u64`), and the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`. Statistical quality matches the
//! upstream crate for these paths (uniform integers use Lemire-style
//! rejection-free widening; uniform floats use the 53-bit mantissa fill);
//! the exact output streams differ from upstream, which is fine — nothing
//! in the repo depends on upstream's bit streams, only on seeded
//! reproducibility within this codebase.

/// Core random-number-generation interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step — the same expansion upstream `rand` uses for
/// `seed_from_u64`, so small integer seeds decorrelate fully.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable RNG (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

mod sealed {
    /// Types `Rng::gen` can produce uniformly.
    pub trait Standard: Sized {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    /// Types `Rng::gen_range` can sample over a half-open range.
    pub trait Uniform: Copy + PartialOrd {
        fn sample_range<R: super::RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }
}
use sealed::{Standard, Uniform};

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
                   i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
                   usize => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Widening multiply maps 64 random bits onto the span with
                // bias < 2^-64 — indistinguishable at Monte-Carlo scales.
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * <f64 as Standard>::sample(rng)
    }
}

impl Uniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * <f32 as Standard>::sample(rng)
    }
}

/// User-facing convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of a primitive type (`f64` in [0, 1), integers over
    /// their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample over a half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: Uniform>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of [0,1]"
        );
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            let v = splitmix64(&mut s);
            self.0 = s;
            v
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = Counter(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u8..7);
            assert!((3..7).contains(&v));
            let f = rng.gen_range(-0.4..0.4);
            assert!((-0.4..0.4).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_mean_is_centered() {
        let mut rng = Counter(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0u32..100) as f64).sum::<f64>() / n as f64;
        assert!((mean - 49.5).abs() < 1.0, "mean {mean}");
    }
}
