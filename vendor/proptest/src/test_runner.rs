//! Test-execution configuration and per-case outcomes.

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner knobs (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on total `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_cases_sets_count() {
        assert_eq!(ProptestConfig::with_cases(64).cases, 64);
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    fn fail_carries_message() {
        match TestCaseError::fail("boom") {
            TestCaseError::Fail(m) => assert_eq!(m, "boom"),
            _ => panic!("wrong variant"),
        }
    }
}
