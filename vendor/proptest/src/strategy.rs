//! Value-generation strategies: the composable core of mini-proptest.

use std::ops::Range;

/// Deterministic per-test random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
    initial: u64,
}

impl TestRng {
    /// Seeds from `PROPTEST_SEED` (if set) mixed with the test name, so
    /// different tests explore different streams but runs are repeatable.
    pub fn for_test(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xA5E0_17E5_7B0B_5EED);
        let mut h = base;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h,
            initial: h,
        }
    }

    /// The seed this generator started from (for failure reports).
    pub fn initial_seed(&self) -> u64 {
        self.initial
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `lo..hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128 * span) >> 64) as usize
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains into a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `f` (regenerating internally; panics after
    /// 10 000 consecutive rejections, quoting `reason`).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive values",
            self.reason
        );
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Object-safe strategy view, for heterogeneous unions.
pub trait DynStrategy {
    /// The generated type.
    type Value;
    /// Draws one value through the trait object.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value {
        self.generate(rng)
    }
}

/// Boxes a strategy as a union arm (used by `prop_oneof!`).
pub fn union_arm<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn DynStrategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds from boxed arms; panics when empty.
    pub fn new(arms: Vec<Box<dyn DynStrategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.usize_in(0, self.arms.len());
        self.arms[idx].generate_dyn(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add(((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, broad range — upstream's any::<f64> defaults to finite.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        out
    }
}

/// Strategy produced by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy_unit_tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let f = (-2.0..2.0f64).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let mut r = rng();
        let s = (0u32..10)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |&v| v != 0);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v != 0 && v < 20);
        }
        let dependent = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..2, n..n + 1));
        for _ in 0..50 {
            let v = dependent.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![
            union_arm(Just(1u8)),
            union_arm(Just(2)),
            union_arm(Just(3)),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn vec_respects_size_range() {
        let mut r = rng();
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
        let mut c = TestRng::for_test("different");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut r = rng();
        let (a, b, c, d) = (0u8..2, 5u16..6, Just(7u32), (0.0..1.0f64)).generate(&mut r);
        assert!(a < 2);
        assert_eq!(b, 5);
        assert_eq!(c, 7);
        assert!((0.0..1.0).contains(&d));
    }
}
