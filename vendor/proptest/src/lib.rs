//! Offline mini-proptest: deterministic random-input property testing.
//!
//! Implements the strategy algebra and macros this workspace's property
//! tests use — range/`any` strategies, `Just`, tuples, `prop_oneof!`,
//! `prop::collection::vec`, `prop_map`/`prop_flat_map`/`prop_filter`,
//! `prop_assert*`/`prop_assume!`, and the `proptest!` test wrapper with
//! `ProptestConfig::with_cases`. Differences from upstream: no shrinking
//! (a failure reports the case number and seed instead of a minimal
//! counterexample), and case generation is seeded deterministically (set
//! `PROPTEST_SEED` to explore a different stream, `PROPTEST_CASES` to
//! scale case counts).

pub mod strategy;
pub mod test_runner;

/// `prop::...` paths as upstream's prelude exposes them.
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Aborts the current case as failed (formatted assertion message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($arm)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = config.effective_cases();
            let mut rng = $crate::strategy::TestRng::for_test(stringify!($name));
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < cases {
                use $crate::strategy::Strategy as _;
                $(let $pat = ($strat).generate(&mut rng);)*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejects += 1;
                        if rejects > config.max_global_rejects {
                            panic!(
                                "proptest '{}': too many prop_assume! rejections ({})",
                                stringify!($name), rejects
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}/{} (seed {}):\n{}",
                            stringify!($name), case + 1, cases, rng.initial_seed(), msg
                        );
                    }
                }
            }
        }
    )*};
}
